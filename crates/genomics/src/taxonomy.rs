//! Taxon identifiers and a rooted taxonomy tree with LCA queries.
//!
//! Kraken-style classifiers place each reference k-mer at the lowest common
//! ancestor (LCA) of all genomes containing it, then classify a read by
//! walking the taxonomy with the per-taxon hit weights. This module provides
//! the tree and LCA machinery.

use std::fmt;

use crate::error::GenomicsError;

/// A taxon label — the payload Sieve stores per reference k-mer
/// (Region 3 of a subarray).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaxonId(pub u32);

impl TaxonId {
    /// The root of every taxonomy.
    pub const ROOT: TaxonId = TaxonId(0);
}

impl fmt::Display for TaxonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "taxon:{}", self.0)
    }
}

/// A rooted taxonomy tree. Node 0 is always the root.
///
/// # Example
///
/// ```
/// use sieve_genomics::{Taxonomy, TaxonId};
///
/// let mut tax = Taxonomy::new();
/// let bacteria = tax.add_child(TaxonId::ROOT, "Bacteria")?;
/// let ecoli = tax.add_child(bacteria, "E. coli")?;
/// let salmonella = tax.add_child(bacteria, "Salmonella")?;
/// assert_eq!(tax.lca(ecoli, salmonella)?, bacteria);
/// # Ok::<(), sieve_genomics::GenomicsError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Taxonomy {
    parent: Vec<u32>,
    depth: Vec<u32>,
    names: Vec<String>,
}

impl Taxonomy {
    /// A taxonomy containing only the root.
    #[must_use]
    pub fn new() -> Self {
        Self {
            parent: vec![0],
            depth: vec![0],
            names: vec!["root".to_string()],
        }
    }

    /// Number of taxa, including the root.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether only the root exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Adds a child of `parent` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::UnknownTaxon`] if `parent` does not exist.
    pub fn add_child(
        &mut self,
        parent: TaxonId,
        name: impl Into<String>,
    ) -> Result<TaxonId, GenomicsError> {
        self.check(parent)?;
        let id = TaxonId(self.parent.len() as u32);
        self.parent.push(parent.0);
        self.depth.push(self.depth[parent.0 as usize] + 1);
        self.names.push(name.into());
        Ok(id)
    }

    /// The parent of `taxon` (the root is its own parent).
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::UnknownTaxon`] if the taxon does not exist.
    pub fn parent(&self, taxon: TaxonId) -> Result<TaxonId, GenomicsError> {
        self.check(taxon)?;
        Ok(TaxonId(self.parent[taxon.0 as usize]))
    }

    /// The name of `taxon`.
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::UnknownTaxon`] if the taxon does not exist.
    pub fn name(&self, taxon: TaxonId) -> Result<&str, GenomicsError> {
        self.check(taxon)?;
        Ok(&self.names[taxon.0 as usize])
    }

    /// Depth of `taxon` (root = 0).
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::UnknownTaxon`] if the taxon does not exist.
    pub fn depth(&self, taxon: TaxonId) -> Result<u32, GenomicsError> {
        self.check(taxon)?;
        Ok(self.depth[taxon.0 as usize])
    }

    /// Lowest common ancestor of two taxa.
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::UnknownTaxon`] if either taxon is missing.
    pub fn lca(&self, a: TaxonId, b: TaxonId) -> Result<TaxonId, GenomicsError> {
        self.check(a)?;
        self.check(b)?;
        let (mut x, mut y) = (a.0 as usize, b.0 as usize);
        while self.depth[x] > self.depth[y] {
            x = self.parent[x] as usize;
        }
        while self.depth[y] > self.depth[x] {
            y = self.parent[y] as usize;
        }
        while x != y {
            x = self.parent[x] as usize;
            y = self.parent[y] as usize;
        }
        Ok(TaxonId(x as u32))
    }

    /// Path from `taxon` up to (and including) the root.
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::UnknownTaxon`] if the taxon does not exist.
    pub fn path_to_root(&self, taxon: TaxonId) -> Result<Vec<TaxonId>, GenomicsError> {
        self.check(taxon)?;
        let mut path = vec![taxon];
        let mut cur = taxon.0 as usize;
        while cur != 0 {
            cur = self.parent[cur] as usize;
            path.push(TaxonId(cur as u32));
        }
        Ok(path)
    }

    fn check(&self, taxon: TaxonId) -> Result<(), GenomicsError> {
        if (taxon.0 as usize) < self.len() {
            Ok(())
        } else {
            Err(GenomicsError::UnknownTaxon { taxon: taxon.0 })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Taxonomy, TaxonId, TaxonId, TaxonId, TaxonId) {
        let mut t = Taxonomy::new();
        let bact = t.add_child(TaxonId::ROOT, "Bacteria").unwrap();
        let entero = t.add_child(bact, "Enterobacteriaceae").unwrap();
        let ecoli = t.add_child(entero, "E. coli").unwrap();
        let salm = t.add_child(entero, "Salmonella").unwrap();
        (t, bact, entero, ecoli, salm)
    }

    #[test]
    fn lca_of_siblings_is_parent() {
        let (t, _, entero, ecoli, salm) = sample();
        assert_eq!(t.lca(ecoli, salm).unwrap(), entero);
    }

    #[test]
    fn lca_with_ancestor_is_ancestor() {
        let (t, bact, _, ecoli, _) = sample();
        assert_eq!(t.lca(ecoli, bact).unwrap(), bact);
        assert_eq!(t.lca(bact, ecoli).unwrap(), bact);
    }

    #[test]
    fn lca_with_self_is_self() {
        let (t, _, _, ecoli, _) = sample();
        assert_eq!(t.lca(ecoli, ecoli).unwrap(), ecoli);
    }

    #[test]
    fn lca_with_root() {
        let (t, _, _, ecoli, _) = sample();
        assert_eq!(t.lca(ecoli, TaxonId::ROOT).unwrap(), TaxonId::ROOT);
    }

    #[test]
    fn path_to_root_walks_ancestry() {
        let (t, bact, entero, ecoli, _) = sample();
        assert_eq!(
            t.path_to_root(ecoli).unwrap(),
            vec![ecoli, entero, bact, TaxonId::ROOT]
        );
    }

    #[test]
    fn unknown_taxon_is_error() {
        let (t, ..) = sample();
        assert!(t.lca(TaxonId(99), TaxonId::ROOT).is_err());
        assert!(t.name(TaxonId(99)).is_err());
    }

    #[test]
    fn depth_and_names() {
        let (t, bact, entero, ecoli, _) = sample();
        assert_eq!(t.depth(TaxonId::ROOT).unwrap(), 0);
        assert_eq!(t.depth(bact).unwrap(), 1);
        assert_eq!(t.depth(entero).unwrap(), 2);
        assert_eq!(t.name(ecoli).unwrap(), "E. coli");
    }

    #[test]
    fn display_taxon() {
        assert_eq!(TaxonId(7).to_string(), "taxon:7");
    }
}
