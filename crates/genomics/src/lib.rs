//! # sieve-genomics
//!
//! The genomics substrate for the [Sieve] reproduction (ISCA 2021): the
//! paper accelerates **k-mer matching** — looking up fixed-length DNA
//! subsequences in a reference database — so this crate provides everything
//! upstream and downstream of the accelerator:
//!
//! * [`Base`] / [`Kmer`] / [`DnaSequence`] — the paper's 2-bit encoding
//!   (`A:00, C:01, T:10, G:11`), packed 64-bit k-mers whose integer order is
//!   lexicographic (the property Sieve's subarray index exploits), and
//!   sequences with `N`-aware k-mer extraction;
//! * [`fasta`] / [`fastq`] — minimal readers/writers for the paper's file
//!   formats;
//! * [`Taxonomy`] / [`TaxonId`] — the taxon labels Sieve stores as payloads,
//!   with LCA queries for Kraken-style databases;
//! * [`db`] — the three reference-database organizations of §II
//!   (hash table, sorted list, Kraken-style signature-bucket hybrid);
//! * [`synth`] — seeded synthetic stand-ins for the paper's datasets
//!   (Table II query files, MiniKraken/NCBI references);
//! * [`classify`] — CLARK-style majority and Kraken-style path-weight
//!   classification (Figure 3);
//! * [`apps`] — the six instrumented pipelines of Figure 1.
//!
//! ## Example
//!
//! ```
//! use sieve_genomics::{synth, db::{SortedDb, KmerDatabase}};
//!
//! let dataset = synth::make_dataset_with(4, 1024, 31, 42);
//! let db = SortedDb::from_entries(dataset.entries.clone(), 31);
//! let (reads, _) = synth::simulate_reads(
//!     &dataset, synth::ReadSimConfig::default(), 10, 7);
//! let hits: usize = reads
//!     .iter()
//!     .flat_map(|r| r.kmers(31))
//!     .filter(|(_, kmer)| db.get(*kmer).is_some())
//!     .count();
//! println!("{hits} k-mer hits");
//! ```
//!
//! [Sieve]: https://doi.org/10.1109/ISCA52012.2021.00022

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apps;
mod base;
pub mod classify;
pub mod counting;
pub mod db;
mod error;
pub mod fasta;
pub mod fastq;
mod kmer;
pub mod pack;
mod sequence;
pub mod stats;
pub mod synth;
mod taxonomy;

pub use base::Base;
pub use error::GenomicsError;
pub use kmer::{canonical_bits, revcomp_bits, Kmer, MAX_K};
pub use sequence::{DnaSequence, Kmers};
pub use taxonomy::{TaxonId, Taxonomy};
