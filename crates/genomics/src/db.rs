//! Reference k-mer databases.
//!
//! The paper's CPU baselines differ in how they store the reference set
//! (§II): CLARK/LMAT use a **hash table** ([`HashDb`]), simple tools use a
//! **sorted list** ([`SortedDb`]), and Kraken uses a **hybrid**: k-mers
//! sharing a *signature* (minimizer) live in one hash bucket that is
//! searched by binary search ([`HybridDb`]). Sieve itself consumes the
//! globally sorted entry list (Region-1 layout is built from
//! [`SortedDb::entries`]).

use std::collections::HashMap;

use crate::error::GenomicsError;
use crate::kmer::Kmer;
use crate::sequence::DnaSequence;
use crate::taxonomy::{TaxonId, Taxonomy};

/// A read-only reference k-mer → taxon mapping.
pub trait KmerDatabase {
    /// Looks up a query k-mer; `Some(taxon)` on a hit.
    fn get(&self, kmer: Kmer) -> Option<TaxonId>;
    /// Number of reference k-mers stored.
    fn len(&self) -> usize;
    /// Whether the database is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The k all stored k-mers share.
    fn k(&self) -> usize;
}

/// Options controlling database construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbOptions {
    /// The k-mer length (the paper uses k = 31).
    pub k: usize,
    /// Store canonical (min of forward / reverse-complement) k-mers, as
    /// Kraken does.
    pub canonical: bool,
    /// Keep only k-mers occurring at least this often across all genomes
    /// (1 keeps everything; >1 drops error/contaminant artifacts, as
    /// counting-based builders do).
    pub min_count: u64,
}

impl Default for DbOptions {
    fn default() -> Self {
        Self {
            k: 31,
            canonical: false,
            min_count: 1,
        }
    }
}

/// Builds the sorted, deduplicated `(k-mer, taxon)` entry list from labelled
/// genomes. K-mers occurring in several taxa get the LCA of those taxa when
/// a taxonomy is provided (Kraken's rule), otherwise the smallest taxon id.
///
/// # Errors
///
/// Returns [`GenomicsError::InvalidK`] for unsupported k, or an LCA error if
/// a genome references a taxon missing from `taxonomy`.
pub fn build_entries(
    genomes: &[(TaxonId, DnaSequence)],
    options: DbOptions,
    taxonomy: Option<&Taxonomy>,
) -> Result<Vec<(Kmer, TaxonId)>, GenomicsError> {
    if options.k == 0 || options.k > crate::kmer::MAX_K {
        return Err(GenomicsError::InvalidK { k: options.k });
    }
    let mut map: HashMap<u64, (TaxonId, u64)> = HashMap::new();
    for (taxon, seq) in genomes {
        for (_, kmer) in seq.kmers(options.k) {
            let kmer = if options.canonical {
                kmer.canonical()
            } else {
                kmer
            };
            match map.entry(kmer.bits()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let (prev, count) = *e.get();
                    let merged = match taxonomy {
                        Some(t) => t.lca(prev, *taxon)?,
                        None => prev.min(*taxon),
                    };
                    e.insert((merged, count + 1));
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((*taxon, 1));
                }
            }
        }
    }
    let mut entries: Vec<(Kmer, TaxonId)> = map
        .into_iter()
        .filter(|(_, (_, count))| *count >= options.min_count.max(1))
        .map(|(bits, (taxon, _))| {
            (
                Kmer::from_u64(bits, options.k).expect("bits came from a valid k-mer"),
                taxon,
            )
        })
        .collect();
    entries.sort_by_key(|(k, _)| k.bits());
    Ok(entries)
}

/// Hash-table database (CLARK/LMAT-style).
#[derive(Debug, Clone)]
pub struct HashDb {
    map: HashMap<u64, TaxonId>,
    k: usize,
}

impl HashDb {
    /// Builds from sorted or unsorted entries.
    ///
    /// # Panics
    ///
    /// Panics if entries have inconsistent k.
    #[must_use]
    pub fn from_entries(entries: &[(Kmer, TaxonId)], k: usize) -> Self {
        let mut map = HashMap::with_capacity(entries.len());
        for (kmer, taxon) in entries {
            assert_eq!(kmer.k(), k, "entry k mismatch");
            map.insert(kmer.bits(), *taxon);
        }
        Self { map, k }
    }
}

impl KmerDatabase for HashDb {
    fn get(&self, kmer: Kmer) -> Option<TaxonId> {
        debug_assert_eq!(kmer.k(), self.k);
        self.map.get(&kmer.bits()).copied()
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn k(&self) -> usize {
        self.k
    }
}

/// Sorted-array database: binary search lookups, neighbour access, and the
/// global order Sieve's layout and index table are built from.
#[derive(Debug, Clone)]
pub struct SortedDb {
    entries: Vec<(Kmer, TaxonId)>,
    k: usize,
}

impl SortedDb {
    /// Builds from entries (sorted internally if needed).
    ///
    /// # Panics
    ///
    /// Panics if entries have inconsistent k.
    #[must_use]
    pub fn from_entries(mut entries: Vec<(Kmer, TaxonId)>, k: usize) -> Self {
        for (kmer, _) in &entries {
            assert_eq!(kmer.k(), k, "entry k mismatch");
        }
        entries.sort_by_key(|(kmer, _)| kmer.bits());
        entries.dedup_by_key(|(kmer, _)| kmer.bits());
        Self { entries, k }
    }

    /// The sorted entry slice.
    #[must_use]
    pub fn entries(&self) -> &[(Kmer, TaxonId)] {
        &self.entries
    }

    /// Index of `kmer` if present, else the insertion point.
    pub fn find(&self, kmer: Kmer) -> Result<usize, usize> {
        self.entries
            .binary_search_by_key(&kmer.bits(), |(k, _)| k.bits())
    }

    /// The longest common prefix, in bits, between `query` and *any* stored
    /// k-mer. Because entries are sorted, the maximum is achieved by one of
    /// the two neighbours of the query's insertion point — this identity is
    /// what makes the fast Sieve engine exact (property-tested against the
    /// bit-accurate engine in `sieve-core`).
    ///
    /// Returns `2k` when the query is present. Returns 0 for an empty db.
    #[must_use]
    pub fn max_lcp_bits(&self, query: Kmer) -> usize {
        match self.find(query) {
            Ok(_) => query.bit_len(),
            Err(ins) => {
                let mut best = 0;
                if ins > 0 {
                    best = best.max(self.entries[ins - 1].0.lcp_bits(&query));
                }
                if ins < self.entries.len() {
                    best = best.max(self.entries[ins].0.lcp_bits(&query));
                }
                best
            }
        }
    }
}

impl KmerDatabase for SortedDb {
    fn get(&self, kmer: Kmer) -> Option<TaxonId> {
        self.find(kmer).ok().map(|i| self.entries[i].1)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn k(&self) -> usize {
        self.k
    }
}

/// Kraken-style hybrid database: k-mers grouped into buckets by signature
/// (minimizer), each bucket sorted and binary-searched.
///
/// The flat [`HybridDb::storage`] layout (one contiguous entry array plus a
/// signature → range map) is what the CPU baseline's cache model walks.
#[derive(Debug, Clone)]
pub struct HybridDb {
    /// Entries sorted by (signature, k-mer bits).
    storage: Vec<(u64, u64, TaxonId)>,
    /// signature → (offset, len) into `storage`.
    buckets: HashMap<u64, (u32, u32)>,
    k: usize,
    m: usize,
}

impl HybridDb {
    /// Builds from entries with minimizer length `m` (Kraken's default
    /// relationship is m << k; we default to 7 in [`HybridDb::from_entries`]).
    ///
    /// # Panics
    ///
    /// Panics if `m` is 0, greater than k, or entries have inconsistent k.
    #[must_use]
    pub fn with_minimizer(entries: &[(Kmer, TaxonId)], k: usize, m: usize) -> Self {
        assert!(m >= 1 && m <= k, "minimizer length must be in 1..=k");
        let mut storage: Vec<(u64, u64, TaxonId)> = entries
            .iter()
            .map(|(kmer, taxon)| {
                assert_eq!(kmer.k(), k, "entry k mismatch");
                (Self::signature_of(*kmer, m), kmer.bits(), *taxon)
            })
            .collect();
        storage.sort_by_key(|e| (e.0, e.1));
        storage.dedup_by_key(|e| (e.0, e.1));
        let mut buckets = HashMap::new();
        let mut i = 0;
        while i < storage.len() {
            let sig = storage[i].0;
            let start = i;
            while i < storage.len() && storage[i].0 == sig {
                i += 1;
            }
            buckets.insert(sig, (start as u32, (i - start) as u32));
        }
        Self {
            storage,
            buckets,
            k,
            m,
        }
    }

    /// Builds with the default minimizer length (7).
    #[must_use]
    pub fn from_entries(entries: &[(Kmer, TaxonId)], k: usize) -> Self {
        Self::with_minimizer(entries, k, 7.min(k))
    }

    /// The signature (minimum m-mer value over all m-windows) of a k-mer.
    #[must_use]
    pub fn signature_of(kmer: Kmer, m: usize) -> u64 {
        let k = kmer.k();
        assert!(m >= 1 && m <= k);
        let mask = (1u64 << (2 * m)) - 1;
        (0..=(k - m))
            .map(|i| (kmer.bits() >> (2 * (k - m - i))) & mask)
            .min()
            .expect("at least one window")
    }

    /// The signature this database would compute for `kmer`.
    #[must_use]
    pub fn signature(&self, kmer: Kmer) -> u64 {
        Self::signature_of(kmer, self.m)
    }

    /// The minimizer length.
    #[must_use]
    pub fn minimizer_len(&self) -> usize {
        self.m
    }

    /// The `(offset, len)` of the bucket for `signature`, if any — offsets
    /// index the flat [`Self::storage`] array.
    #[must_use]
    pub fn bucket(&self, signature: u64) -> Option<(u32, u32)> {
        self.buckets.get(&signature).copied()
    }

    /// The flat sorted storage: `(signature, kmer bits, taxon)`.
    #[must_use]
    pub fn storage(&self) -> &[(u64, u64, TaxonId)] {
        &self.storage
    }

    /// Number of distinct buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

impl KmerDatabase for HybridDb {
    fn get(&self, kmer: Kmer) -> Option<TaxonId> {
        debug_assert_eq!(kmer.k(), self.k);
        let sig = self.signature(kmer);
        let (off, len) = self.bucket(sig)?;
        let slice = &self.storage[off as usize..(off + len) as usize];
        slice
            .binary_search_by_key(&kmer.bits(), |e| e.1)
            .ok()
            .map(|i| slice[i].2)
    }

    fn len(&self) -> usize {
        self.storage.len()
    }

    fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genomes() -> Vec<(TaxonId, DnaSequence)> {
        vec![
            (TaxonId(1), "ACGTACGTAC".parse().unwrap()),
            (TaxonId(2), "TTGCAACGTA".parse().unwrap()),
        ]
    }

    fn entries(k: usize) -> Vec<(Kmer, TaxonId)> {
        build_entries(
            &genomes(),
            DbOptions {
                k,
                ..DbOptions::default()
            },
            None,
        )
        .unwrap()
    }

    #[test]
    fn build_entries_sorted_and_deduped() {
        let es = entries(4);
        for w in es.windows(2) {
            assert!(w[0].0.bits() < w[1].0.bits());
        }
    }

    #[test]
    fn duplicate_kmer_resolves_to_min_taxon_without_taxonomy() {
        // "ACGTA" occurs in both genomes (offset 0 of g1, offset 5 of g2).
        let es = entries(5);
        let acgta: Kmer = "ACGTA".parse().unwrap();
        let hit = es.iter().find(|(k, _)| *k == acgta).unwrap();
        assert_eq!(hit.1, TaxonId(1));
    }

    #[test]
    fn duplicate_kmer_resolves_to_lca_with_taxonomy() {
        let mut tax = Taxonomy::new();
        let genus = tax.add_child(TaxonId::ROOT, "genus").unwrap();
        let s1 = tax.add_child(genus, "sp1").unwrap();
        let s2 = tax.add_child(genus, "sp2").unwrap();
        let genomes = vec![
            (s1, "ACGTACGTAC".parse().unwrap()),
            (s2, "TTGCAACGTA".parse().unwrap()),
        ];
        let es = build_entries(
            &genomes,
            DbOptions {
                k: 5,
                ..DbOptions::default()
            },
            Some(&tax),
        )
        .unwrap();
        let acgta: Kmer = "ACGTA".parse().unwrap();
        let hit = es.iter().find(|(k, _)| *k == acgta).unwrap();
        assert_eq!(hit.1, genus);
    }

    #[test]
    fn all_three_dbs_agree() {
        let es = entries(4);
        let sorted = SortedDb::from_entries(es.clone(), 4);
        let hash = HashDb::from_entries(&es, 4);
        let hybrid = HybridDb::from_entries(&es, 4);
        assert_eq!(sorted.len(), hash.len());
        assert_eq!(sorted.len(), hybrid.len());
        for (kmer, taxon) in &es {
            assert_eq!(sorted.get(*kmer), Some(*taxon));
            assert_eq!(hash.get(*kmer), Some(*taxon));
            assert_eq!(hybrid.get(*kmer), Some(*taxon));
        }
        let missing: Kmer = "GGGG".parse().unwrap();
        if sorted.find(missing).is_err() {
            assert_eq!(hash.get(missing), None);
            assert_eq!(hybrid.get(missing), None);
        }
    }

    #[test]
    fn max_lcp_bits_is_exact() {
        let es = entries(6);
        let sorted = SortedDb::from_entries(es.clone(), 6);
        // Brute-force comparison over every stored k-mer.
        for probe in ["AAAAAA", "ACGTAC", "TTTTTT", "GTACGT", "CAACGT"] {
            let q: Kmer = probe.parse().unwrap();
            let brute = es.iter().map(|(k, _)| k.lcp_bits(&q)).max().unwrap();
            assert_eq!(sorted.max_lcp_bits(q), brute, "probe {probe}");
        }
    }

    #[test]
    fn max_lcp_full_length_on_hit() {
        let es = entries(5);
        let sorted = SortedDb::from_entries(es.clone(), 5);
        let present = es[0].0;
        assert_eq!(sorted.max_lcp_bits(present), 10);
    }

    #[test]
    fn empty_db_lcp_is_zero() {
        let sorted = SortedDb::from_entries(Vec::new(), 5);
        let q: Kmer = "ACGTA".parse().unwrap();
        assert_eq!(sorted.max_lcp_bits(q), 0);
        assert_eq!(sorted.get(q), None);
    }

    #[test]
    fn canonical_option_stores_canonical_forms() {
        let genomes = vec![(TaxonId(1), "ACGT".parse().unwrap())];
        let es = build_entries(
            &genomes,
            DbOptions {
                k: 4,
                canonical: true,
                min_count: 1,
            },
            None,
        )
        .unwrap();
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].0, es[0].0.canonical());
    }

    #[test]
    fn signature_is_min_window() {
        // "ACGT" m=2 windows: AC=0b0001, CG=0b0111, GT=0b1110 → min AC.
        let k: Kmer = "ACGT".parse().unwrap();
        assert_eq!(HybridDb::signature_of(k, 2), 0b0001);
    }

    #[test]
    fn hybrid_buckets_are_contiguous_and_sorted() {
        let es = entries(6);
        let db = HybridDb::from_entries(&es, 6);
        let mut total = 0usize;
        // Every stored entry must be found through its bucket.
        for &(sig, bits, taxon) in db.storage() {
            let (off, len) = db.bucket(sig).unwrap();
            let slice = &db.storage()[off as usize..(off + len) as usize];
            assert!(slice
                .iter()
                .any(|&(s, b, t)| s == sig && b == bits && t == taxon));
            total += 1;
        }
        assert_eq!(total, db.len());
        assert!(db.bucket_count() <= db.len());
    }

    #[test]
    fn min_count_filters_rare_kmers() {
        // Genomes 1 and 2 share every k-mer (count ≥ 2); genome 3's
        // non-repetitive k-mers are singletons.
        let genomes: Vec<(TaxonId, DnaSequence)> = vec![
            (TaxonId(1), "ACGTACGTAC".parse().unwrap()),
            (TaxonId(2), "ACGTACGTAC".parse().unwrap()),
            (TaxonId(3), "TACGGCATTG".parse().unwrap()),
        ];
        let all = build_entries(
            &genomes,
            DbOptions {
                k: 5,
                ..DbOptions::default()
            },
            None,
        )
        .unwrap();
        let solid = build_entries(
            &genomes,
            DbOptions {
                k: 5,
                min_count: 2,
                ..DbOptions::default()
            },
            None,
        )
        .unwrap();
        assert!(solid.len() < all.len());
        // The singleton poly-T k-mer survives only without the filter
        // (count 6 actually — poly-T k-mer repeats; pick a unique one).
        let unique: Kmer = "GTACG".parse().unwrap();
        assert!(all.iter().any(|(k, _)| *k == unique));
        assert!(
            solid.iter().any(|(k, _)| *k == unique),
            "appears in both genomes"
        );
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(build_entries(
            &genomes(),
            DbOptions {
                k: 0,
                ..DbOptions::default()
            },
            None
        )
        .is_err());
        assert!(build_entries(
            &genomes(),
            DbOptions {
                k: 33,
                ..DbOptions::default()
            },
            None
        )
        .is_err());
    }

    #[test]
    fn adjacent_kmers_often_share_signature() {
        // The paper notes only ~8 % of consecutive k-mers share a bucket in
        // Kraken's real DB; for short synthetic sequences the rate differs,
        // but the mechanism (overlapping windows can share a minimizer)
        // must work: two overlapping k-mers with the same minimizer window
        // share a signature.
        let a: Kmer = "AACGTT".parse().unwrap();
        let b: Kmer = "ACGTTT".parse().unwrap();
        let (sa, sb) = (HybridDb::signature_of(a, 3), HybridDb::signature_of(b, 3));
        // Both contain the window "AAC"/"ACG"... just assert determinism
        // and that signatures fit in 2m bits.
        assert!(sa < 1 << 6 && sb < 1 << 6);
    }
}
