//! 2-bit packed reads and the SWAR extraction kernel (DESIGN.md §9).
//!
//! A [`DnaSequence`] stores one ASCII byte per base; the host hot path
//! repacks it once into the paper's 2-bit encoding, 32 bases per `u64`
//! (Figure 6), plus a 1-bit-per-base validity mask, 64 bases per `u64`.
//! The ASCII identity `(byte >> 1) & 3` maps `A/C/G/T` to exactly the
//! paper's `00/01/10/11` codes, so packing is a shift and a mask per base
//! — no table, no branch. `N` packs to a garbage code and is handled
//! entirely through the validity mask.
//!
//! **Mask propagation (window poisoning).** A k-mer window is emitted only
//! if all k of its bases are valid. Rather than branching per base, the
//! per-base mask is *eroded*: `O(log k)` whole-vector shift-AND rounds
//! leave bit `i` set iff bits `i..i+k` were all set, so a single `N`
//! poisons exactly the k windows that cover it. The extractor then rolls
//! forward and reverse-complement packings across the read with two
//! shift/OR updates per base and tests one precomputed mask bit per
//! window.
//!
//! Every kernel here has a scalar twin ([`DnaSequence::kmers`] plus
//! [`Kmer::reverse_complement_scalar`]); `tests/kernel_equivalence.rs`
//! proves the two paths byte-identical over adversarial inputs.

use crate::kmer::{Kmer, MAX_K};
use crate::sequence::DnaSequence;

/// 1 for the four unambiguous uppercase bases, 0 for everything else
/// (including `N`). A constant table keeps the packing loop branch-free.
const VALID: [u8; 256] = {
    let mut lut = [0u8; 256];
    lut[b'A' as usize] = 1;
    lut[b'C' as usize] = 1;
    lut[b'G' as usize] = 1;
    lut[b'T' as usize] = 1;
    lut
};

/// A sequence packed into 2-bit codes (32 bases per `u64`, base `i` at
/// bits `2(i mod 32)..`) with a validity bitmask (64 bases per `u64`,
/// base `i` at bit `i mod 64`).
#[derive(Debug, Clone, Default)]
pub struct PackedSeq {
    words: Vec<u64>,
    valid: Vec<u64>,
    len: usize,
}

impl PackedSeq {
    /// An empty packing.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Packs `seq`, reusing this packing's buffers.
    pub fn pack(&mut self, seq: &DnaSequence) {
        let bytes = seq.as_bytes();
        self.len = bytes.len();
        self.words.clear();
        self.words.extend(bytes.chunks(32).map(|chunk| {
            let mut word = 0u64;
            for (j, &b) in chunk.iter().enumerate() {
                // ASCII 'A'/'C'/'G'/'T' >> 1 ends in 00/01/11/10 — the
                // paper's encoding. 'N' packs to G's code; the validity
                // mask, not a branch, keeps it out of the output.
                word |= (u64::from(b >> 1) & 3) << (j * 2);
            }
            word
        }));
        self.valid.clear();
        self.valid.extend(bytes.chunks(64).map(|chunk| {
            let mut mask = 0u64;
            for (j, &b) in chunk.iter().enumerate() {
                mask |= u64::from(VALID[b as usize]) << j;
            }
            mask
        }));
    }

    /// Packs `seq` into a fresh packing.
    #[must_use]
    pub fn from_sequence(seq: &DnaSequence) -> Self {
        let mut packed = Self::new();
        packed.pack(seq);
        packed
    }

    /// Length in bases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the packing is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 2-bit code of base `i` (garbage for invalid bases).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    #[must_use]
    pub fn code(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "base index {i} out of range");
        (self.words[i >> 5] >> ((i & 31) * 2)) & 3
    }

    /// Whether base `i` is unambiguous (`ACGT`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    #[must_use]
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "base index {i} out of range");
        (self.valid[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// The packed code words (32 bases each, low bits first).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The validity mask words (64 bases each, low bits first).
    #[must_use]
    pub fn valid_words(&self) -> &[u64] {
        &self.valid
    }

    /// Erodes the validity mask into a window mask: bit `i` of `out` is
    /// set iff bases `i..i+k` are all valid — i.e. the k-mer window
    /// starting at `i` may be emitted. Out-of-range windows read zeros
    /// and come out unset. `O(log k)` shift-AND rounds over the whole
    /// vector; no per-base branch.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or greater than 32.
    pub fn window_mask_into(&self, k: usize, out: &mut Vec<u64>) {
        assert!((1..=MAX_K).contains(&k), "k must be in 1..=32");
        out.clear();
        out.extend_from_slice(&self.valid);
        // After each round, bit i attests to `done` valid bases from i.
        // Doubling (capped at the remainder) reaches any k ≤ 32 in at
        // most 5 rounds.
        let mut done = 1usize;
        while done < k {
            let shift = done.min(k - done);
            shift_and_in_place(out, shift);
            done += shift;
        }
    }
}

/// `mask &= mask >> shift` over a multi-word bitvector (shift toward bit
/// 0, zero-filled past the end). `shift` must be in `1..64`.
fn shift_and_in_place(mask: &mut [u64], shift: usize) {
    debug_assert!((1..64).contains(&shift));
    for w in 0..mask.len() {
        let next = if w + 1 < mask.len() { mask[w + 1] } else { 0 };
        mask[w] &= (mask[w] >> shift) | (next << (64 - shift));
    }
}

/// Reusable packing and window-mask scratch for the SWAR extractor. One
/// `Extractor` amortizes its buffers across every read of a chunk, so the
/// steady state allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct Extractor {
    packed: PackedSeq,
    wmask: Vec<u64>,
}

impl Extractor {
    /// A fresh extractor (no buffers allocated until first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends every valid forward k-mer of `seq` to `out`, in offset
    /// order, and returns how many were appended. Byte-identical to
    /// collecting [`DnaSequence::kmers`].
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or greater than 32.
    pub fn extract_forward_into(
        &mut self,
        seq: &DnaSequence,
        k: usize,
        out: &mut Vec<Kmer>,
    ) -> usize {
        self.extract_into(seq, k, false, out)
    }

    /// Appends every valid k-mer of `seq` in canonical form (minimum of
    /// forward and reverse complement, selected branchlessly), in offset
    /// order, and returns how many were appended. Byte-identical to
    /// collecting [`DnaSequence::canonical_kmers`].
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or greater than 32.
    pub fn extract_canonical_into(
        &mut self,
        seq: &DnaSequence,
        k: usize,
        out: &mut Vec<Kmer>,
    ) -> usize {
        self.extract_into(seq, k, true, out)
    }

    /// The rolling kernel: two shift/OR updates per base maintain the
    /// forward and reverse-complement packings of the current window
    /// (complementing a code is `code ^ 2` — flip the field's high bit),
    /// and one precomputed mask bit per window decides emission. The
    /// only data-dependent branch left is the emission test itself.
    fn extract_into(
        &mut self,
        seq: &DnaSequence,
        k: usize,
        canonical: bool,
        out: &mut Vec<Kmer>,
    ) -> usize {
        assert!((1..=MAX_K).contains(&k), "k must be in 1..=32");
        if seq.len() < k {
            return 0;
        }
        let before = out.len();
        self.packed.pack(seq);
        self.packed.window_mask_into(k, &mut self.wmask);
        let kmask = if k == MAX_K {
            u64::MAX
        } else {
            (1u64 << (2 * k)) - 1
        };
        let top = 2 * (k - 1);
        let mut fwd = 0u64;
        let mut rc = 0u64;
        for i in 0..k - 1 {
            let code = self.packed.code(i);
            fwd = (fwd << 2) | code;
            rc = (rc >> 2) | ((code ^ 2) << top);
        }
        for i in k - 1..seq.len() {
            let code = self.packed.code(i);
            fwd = ((fwd << 2) | code) & kmask;
            rc = (rc >> 2) | ((code ^ 2) << top);
            let start = i + 1 - k;
            if (self.wmask[start >> 6] >> (start & 63)) & 1 != 0 {
                let bits = if canonical { fwd.min(rc) } else { fwd };
                out.push(Kmer::from_bits_unchecked(bits, k));
            }
        }
        out.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSequence {
        s.parse().unwrap()
    }

    // ---- golden vectors: hand-computed packed words and masks ----

    #[test]
    fn golden_codes_acgt() {
        // A=00 C=01 G=11 T=10, base 0 in the low bits:
        // "ACGT" → 0b10_11_01_00 = 0xB4.
        let p = PackedSeq::from_sequence(&seq("ACGT"));
        assert_eq!(p.words(), &[0xB4]);
        assert_eq!(p.valid_words(), &[0b1111]);
        assert_eq!(p.code(0), 0b00);
        assert_eq!(p.code(1), 0b01);
        assert_eq!(p.code(2), 0b11);
        assert_eq!(p.code(3), 0b10);
    }

    #[test]
    fn golden_full_word() {
        // "ACGT" × 8 fills one word: every byte is the 0xB4 pattern.
        let p = PackedSeq::from_sequence(&seq(&"ACGT".repeat(8)));
        assert_eq!(p.len(), 32);
        assert_eq!(p.words(), &[0xB4B4_B4B4_B4B4_B4B4]);
        assert_eq!(p.valid_words(), &[u64::MAX >> 32]);
    }

    #[test]
    fn golden_word_boundary_spill() {
        // 33 bases: base 32 starts words[1]; valid mask still one word.
        let p = PackedSeq::from_sequence(&seq(&("ACGT".repeat(8) + "T")));
        assert_eq!(p.words(), &[0xB4B4_B4B4_B4B4_B4B4, 0b10]);
        assert_eq!(p.valid_words(), &[(1u64 << 33) - 1]);
    }

    #[test]
    fn golden_n_validity() {
        let p = PackedSeq::from_sequence(&seq("ACNGT"));
        // N is invalid; its code slot holds garbage but the mask is 0.
        assert_eq!(p.valid_words(), &[0b11011]);
        assert!(p.is_valid(1));
        assert!(!p.is_valid(2));
    }

    #[test]
    fn golden_n_at_code_word_boundaries() {
        // One N at offset 31, 32, or 33 of a 70-base read: the validity
        // word split at base 64 must clear exactly that bit.
        for off in [31usize, 32, 33] {
            let mut s = "A".repeat(70);
            s.replace_range(off..=off, "N");
            let p = PackedSeq::from_sequence(&seq(&s));
            let mut expect0 = u64::MAX;
            let mut expect1 = (1u64 << 6) - 1;
            if off < 64 {
                expect0 &= !(1u64 << off);
            } else {
                expect1 &= !(1u64 << (off - 64));
            }
            assert_eq!(p.valid_words(), &[expect0, expect1], "N at {off}");
        }
    }

    #[test]
    fn golden_window_mask_poisons_k_windows() {
        // 70 A's with an N at offset 33, k=4: window starts 30..=33 are
        // poisoned, everything else up to start 66 survives.
        let mut s = "A".repeat(70);
        s.replace_range(33..34, "N");
        let p = PackedSeq::from_sequence(&seq(&s));
        let mut wmask = Vec::new();
        p.window_mask_into(4, &mut wmask);
        let mut expect0 = u64::MAX;
        for start in 30..=33 {
            expect0 &= !(1u64 << start);
        }
        // Starts 64..=66 remain (67..69 would run off the end).
        assert_eq!(wmask, vec![expect0, 0b111]);
    }

    #[test]
    fn golden_window_mask_k31_at_boundary_offsets() {
        // The acceptance-critical k: one N at a code-word boundary
        // offset poisons starts (off-30)..=off and nothing else.
        let len = 100usize;
        for off in [31usize, 32, 33] {
            let mut s = "A".repeat(len);
            s.replace_range(off..=off, "N");
            let p = PackedSeq::from_sequence(&seq(&s));
            let mut wmask = Vec::new();
            p.window_mask_into(31, &mut wmask);
            for start in 0..=len - 31 {
                let got = (wmask[start >> 6] >> (start & 63)) & 1 != 0;
                let poisoned = start + 31 > off && start <= off;
                assert_eq!(got, !poisoned, "N at {off}, window start {start}");
            }
        }
    }

    #[test]
    fn window_mask_edge_lengths() {
        // len < k → no set bits; len == k → exactly bit 0.
        let p = PackedSeq::from_sequence(&seq("ACG"));
        let mut wmask = Vec::new();
        p.window_mask_into(4, &mut wmask);
        assert!(wmask.iter().all(|&w| w == 0));
        let p = PackedSeq::from_sequence(&seq("ACGT"));
        p.window_mask_into(4, &mut wmask);
        assert_eq!(wmask, vec![0b1]);
    }

    #[test]
    fn empty_sequence_packs_empty() {
        let p = PackedSeq::from_sequence(&DnaSequence::new());
        assert!(p.is_empty());
        assert!(p.words().is_empty());
        assert!(p.valid_words().is_empty());
    }

    // ---- extractor twins (broad coverage in tests/kernel_equivalence.rs) ----

    #[test]
    fn forward_extraction_matches_iterator() {
        let s = seq("ACGTACGTTGCANACGTACGAAACCCGGTT");
        let mut ex = Extractor::new();
        for k in [1usize, 2, 5, 8, 13, 30, 32] {
            let mut swar = Vec::new();
            let n = ex.extract_forward_into(&s, k, &mut swar);
            let scalar: Vec<Kmer> = s.kmers(k).map(|(_, kmer)| kmer).collect();
            assert_eq!(n, scalar.len(), "k={k}");
            assert_eq!(swar, scalar, "k={k}");
        }
    }

    #[test]
    fn canonical_extraction_matches_iterator() {
        let s = seq("ACGTACGTTGCANACGTACGAAACCCGGTT");
        let mut ex = Extractor::new();
        for k in [1usize, 2, 5, 8, 13, 30, 32] {
            let mut swar = Vec::new();
            ex.extract_canonical_into(&s, k, &mut swar);
            let scalar: Vec<Kmer> = s.canonical_kmers(k).map(|(_, kmer)| kmer).collect();
            assert_eq!(swar, scalar, "k={k}");
        }
    }

    #[test]
    fn extractor_reuse_is_clean() {
        // A long read then a short one: stale buffers must not leak.
        let mut ex = Extractor::new();
        let mut out = Vec::new();
        ex.extract_forward_into(&seq(&"ACGT".repeat(40)), 31, &mut out);
        out.clear();
        let n = ex.extract_forward_into(&seq("ACGTACGT"), 4, &mut out);
        assert_eq!(n, 5);
        let scalar: Vec<Kmer> = seq("ACGTACGT").kmers(4).map(|(_, k)| k).collect();
        assert_eq!(out, scalar);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=32")]
    fn zero_k_panics() {
        let mut ex = Extractor::new();
        ex.extract_forward_into(&seq("ACGT"), 0, &mut Vec::new());
    }
}
