//! Nucleotide bases and the paper's 2-bit encoding.

use std::fmt;

use crate::error::GenomicsError;

/// A DNA nucleotide base.
///
/// The discriminants follow the encoding the paper uses (Figure 6:
/// `A: 00, C: 01, T: 10, G: 11`), so [`Base::to_bits`] is a simple cast and
/// packed k-mers order consistently with that encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine, encoded `00`.
    A = 0b00,
    /// Cytosine, encoded `01`.
    C = 0b01,
    /// Thymine, encoded `10`.
    T = 0b10,
    /// Guanine, encoded `11`.
    G = 0b11,
}

impl Base {
    /// All four bases in encoding order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::T, Base::G];

    /// The 2-bit encoding of this base.
    #[must_use]
    pub fn to_bits(self) -> u8 {
        self as u8
    }

    /// Decodes a 2-bit value (only the low two bits are used).
    #[must_use]
    pub fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b00 => Base::A,
            0b01 => Base::C,
            0b10 => Base::T,
            _ => Base::G,
        }
    }

    /// Parses an ASCII base letter (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::InvalidBase`] for anything other than
    /// `A`/`C`/`G`/`T` — including the ambiguity code `N`, which callers
    /// handle at the sequence level.
    pub fn from_ascii(c: u8) -> Result<Self, GenomicsError> {
        match c.to_ascii_uppercase() {
            b'A' => Ok(Base::A),
            b'C' => Ok(Base::C),
            b'T' => Ok(Base::T),
            b'G' => Ok(Base::G),
            other => Err(GenomicsError::InvalidBase { byte: other }),
        }
    }

    /// The ASCII letter for this base.
    #[must_use]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::T => b'T',
            Base::G => b'G',
        }
    }

    /// Watson–Crick complement.
    #[must_use]
    pub fn complement(self) -> Self {
        match self {
            Base::A => Base::T,
            Base::T => Base::A,
            Base::C => Base::G,
            Base::G => Base::C,
        }
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

impl TryFrom<char> for Base {
    type Error = GenomicsError;

    fn try_from(c: char) -> Result<Self, Self::Error> {
        if c.is_ascii() {
            Base::from_ascii(c as u8)
        } else {
            Err(GenomicsError::InvalidBase { byte: b'?' })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_matches_paper_figure_6() {
        assert_eq!(Base::A.to_bits(), 0b00);
        assert_eq!(Base::C.to_bits(), 0b01);
        assert_eq!(Base::T.to_bits(), 0b10);
        assert_eq!(Base::G.to_bits(), 0b11);
    }

    #[test]
    fn bits_round_trip() {
        for b in Base::ALL {
            assert_eq!(Base::from_bits(b.to_bits()), b);
        }
    }

    #[test]
    fn ascii_round_trip_case_insensitive() {
        for b in Base::ALL {
            assert_eq!(Base::from_ascii(b.to_ascii()).unwrap(), b);
            assert_eq!(
                Base::from_ascii(b.to_ascii().to_ascii_lowercase()).unwrap(),
                b
            );
        }
    }

    #[test]
    fn n_is_rejected() {
        assert!(Base::from_ascii(b'N').is_err());
        assert!(Base::from_ascii(b'x').is_err());
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
    }

    #[test]
    fn display_prints_letter() {
        assert_eq!(Base::G.to_string(), "G");
    }

    #[test]
    fn try_from_char() {
        assert_eq!(Base::try_from('a').unwrap(), Base::A);
        assert!(Base::try_from('é').is_err());
    }
}
