//! DNA sequences and k-mer extraction with ambiguity handling.

use std::fmt;
use std::str::FromStr;

use crate::base::Base;
use crate::error::GenomicsError;
use crate::kmer::Kmer;

/// A DNA sequence stored as validated ASCII (`ACGT` plus the ambiguity code
/// `N`).
///
/// Real read files contain `N` positions; any k-mer window covering an `N`
/// is skipped during extraction, exactly as Kraken/CLARK do.
///
/// # Example
///
/// ```
/// use sieve_genomics::DnaSequence;
///
/// let seq: DnaSequence = "ACGTNACGT".parse()?;
/// // Windows covering the N are skipped: 4-mer windows at offsets 0..=5
/// // exist, but only offsets 0 and 5 avoid the N.
/// let kmers: Vec<String> = seq.kmers(4).map(|(_, k)| k.to_string()).collect();
/// assert_eq!(kmers, vec!["ACGT", "ACGT"]);
/// # Ok::<(), sieve_genomics::GenomicsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DnaSequence {
    data: Vec<u8>,
}

impl DnaSequence {
    /// An empty sequence.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a sequence from raw bytes, validating the alphabet
    /// (case-insensitive `ACGTN`).
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::InvalidBase`] on any other byte.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, GenomicsError> {
        let mut data = Vec::with_capacity(bytes.len());
        for &b in bytes {
            let up = b.to_ascii_uppercase();
            match up {
                b'A' | b'C' | b'G' | b'T' | b'N' => data.push(up),
                other => return Err(GenomicsError::InvalidBase { byte: other }),
            }
        }
        Ok(Self { data })
    }

    /// Builds a pure-ACGT sequence from bases.
    #[must_use]
    pub fn from_bases<I: IntoIterator<Item = Base>>(bases: I) -> Self {
        Self {
            data: bases.into_iter().map(Base::to_ascii).collect(),
        }
    }

    /// Length in bases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw ASCII bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// The base at `i`, or `None` if it is an `N`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn base(&self, i: usize) -> Option<Base> {
        Base::from_ascii(self.data[i]).ok()
    }

    /// Appends a base.
    pub fn push(&mut self, base: Base) {
        self.data.push(base.to_ascii());
    }

    /// Appends an ambiguous position.
    pub fn push_ambiguous(&mut self) {
        self.data.push(b'N');
    }

    /// Extracts a sub-range as a new sequence.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, start: usize, len: usize) -> DnaSequence {
        DnaSequence {
            data: self.data[start..start + len].to_vec(),
        }
    }

    /// The reverse complement (`N` positions stay `N`) — the strand a
    /// paired-end mate 2 is read from.
    #[must_use]
    pub fn reverse_complement(&self) -> DnaSequence {
        DnaSequence {
            data: self
                .data
                .iter()
                .rev()
                .map(|&c| match Base::from_ascii(c) {
                    Ok(b) => b.complement().to_ascii(),
                    Err(_) => b'N',
                })
                .collect(),
        }
    }

    /// Iterator over all valid k-mer windows, as `(offset, kmer)` pairs.
    /// Windows containing `N` are skipped. Uses a rolling update, so the
    /// whole scan is O(len).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or greater than 32.
    pub fn kmers(&self, k: usize) -> Kmers<'_> {
        assert!((1..=crate::kmer::MAX_K).contains(&k), "k must be in 1..=32");
        Kmers {
            seq: &self.data,
            k,
            pos: 0,
            current: None,
        }
    }

    /// Iterator over all valid k-mer windows in canonical form (the
    /// lexicographic minimum of each window and its reverse complement),
    /// as `(offset, kmer)` pairs. The scalar twin of
    /// [`crate::pack::Extractor::extract_canonical_into`].
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or greater than 32.
    pub fn canonical_kmers(&self, k: usize) -> impl Iterator<Item = (usize, Kmer)> + '_ {
        self.kmers(k).map(|(off, kmer)| (off, kmer.canonical()))
    }

    /// Number of valid k-mers (equals `self.kmers(k).count()` but O(len)).
    #[must_use]
    pub fn kmer_count(&self, k: usize) -> usize {
        self.kmers(k).count()
    }
}

impl fmt::Display for DnaSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(std::str::from_utf8(&self.data).expect("sequence is ASCII"))
    }
}

impl FromStr for DnaSequence {
    type Err = GenomicsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::from_bytes(s.as_bytes())
    }
}

impl FromIterator<Base> for DnaSequence {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        Self::from_bases(iter)
    }
}

impl Extend<Base> for DnaSequence {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

/// Iterator over `(offset, kmer)` windows of a sequence.
/// Produced by [`DnaSequence::kmers`].
#[derive(Debug, Clone)]
pub struct Kmers<'a> {
    seq: &'a [u8],
    k: usize,
    pos: usize,
    current: Option<Kmer>,
}

impl Iterator for Kmers<'_> {
    type Item = (usize, Kmer);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(cur) = self.current {
                // Roll the window one base forward.
                if self.pos + self.k > self.seq.len() {
                    return None;
                }
                match Base::from_ascii(self.seq[self.pos + self.k - 1]) {
                    Ok(b) => {
                        let next = cur.shifted(b);
                        self.current = Some(next);
                        let off = self.pos;
                        self.pos += 1;
                        return Some((off, next));
                    }
                    Err(_) => {
                        // N at the end of the window: restart after it.
                        self.pos += self.k;
                        self.current = None;
                    }
                }
            } else {
                // (Re)build a full window starting at self.pos.
                if self.pos + self.k > self.seq.len() {
                    return None;
                }
                let window = &self.seq[self.pos..self.pos + self.k];
                if let Some(bad) = window.iter().rposition(|&c| Base::from_ascii(c).is_err()) {
                    self.pos += bad + 1;
                    continue;
                }
                let kmer = Kmer::from_bases(
                    window
                        .iter()
                        .map(|&c| Base::from_ascii(c).expect("window pre-validated")),
                )
                .expect("k validated in DnaSequence::kmers");
                // Store as if the *previous* roll produced it: next() rolls
                // from pos, so park current at pos-1 semantics.
                self.current = Some(kmer);
                let off = self.pos;
                self.pos += 1;
                return Some((off, kmer));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_validates_alphabet() {
        assert!("ACGTN".parse::<DnaSequence>().is_ok());
        assert!("ACGU".parse::<DnaSequence>().is_err());
    }

    #[test]
    fn kmer_extraction_simple() {
        let seq: DnaSequence = "ACGTA".parse().unwrap();
        let kmers: Vec<String> = seq.kmers(3).map(|(_, k)| k.to_string()).collect();
        assert_eq!(kmers, vec!["ACG", "CGT", "GTA"]);
    }

    #[test]
    fn kmer_offsets_reported() {
        let seq: DnaSequence = "ACGTA".parse().unwrap();
        let offs: Vec<usize> = seq.kmers(2).map(|(o, _)| o).collect();
        assert_eq!(offs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn n_windows_are_skipped() {
        let seq: DnaSequence = "ACNGT".parse().unwrap();
        let kmers: Vec<String> = seq.kmers(2).map(|(_, k)| k.to_string()).collect();
        assert_eq!(kmers, vec!["AC", "GT"]);
    }

    #[test]
    fn leading_and_trailing_n() {
        let seq: DnaSequence = "NNACGTNN".parse().unwrap();
        let kmers: Vec<String> = seq.kmers(4).map(|(_, k)| k.to_string()).collect();
        assert_eq!(kmers, vec!["ACGT"]);
    }

    #[test]
    fn all_n_yields_nothing() {
        let seq: DnaSequence = "NNNNN".parse().unwrap();
        assert_eq!(seq.kmer_count(3), 0);
    }

    #[test]
    fn k_longer_than_sequence_yields_nothing() {
        let seq: DnaSequence = "ACG".parse().unwrap();
        assert_eq!(seq.kmers(4).count(), 0);
    }

    #[test]
    fn rolling_matches_naive_extraction() {
        let seq: DnaSequence = "ACGTACGTTGCANACGTACGAAACCCGGTT".parse().unwrap();
        for k in [1usize, 2, 5, 8] {
            let rolled: Vec<(usize, Kmer)> = seq.kmers(k).collect();
            let mut naive = Vec::new();
            for off in 0..=(seq.len().saturating_sub(k)) {
                let window = &seq.as_bytes()[off..off + k];
                if window.iter().all(|&c| Base::from_ascii(c).is_ok()) {
                    let kmer =
                        Kmer::from_bases(window.iter().map(|&c| Base::from_ascii(c).unwrap()))
                            .unwrap();
                    naive.push((off, kmer));
                }
            }
            assert_eq!(rolled, naive, "k={k}");
        }
    }

    #[test]
    fn canonical_kmers_take_the_smaller_strand() {
        // "ACGTA": TA's revcomp is TA... use k=2: "AC"(0b0001) vs
        // revcomp "GT"(0b1110) → AC; "GT" canonicalizes to "AC" too.
        let s: DnaSequence = "ACGT".parse().unwrap();
        let canon: Vec<String> = s.canonical_kmers(2).map(|(_, k)| k.to_string()).collect();
        assert_eq!(canon, vec!["AC", "CG", "AC"]);
        // Offsets match the forward iterator's.
        let offs: Vec<usize> = s.canonical_kmers(2).map(|(o, _)| o).collect();
        assert_eq!(offs, vec![0, 1, 2]);
    }

    #[test]
    fn display_round_trips() {
        let s = "ACGTNACGT";
        let seq: DnaSequence = s.parse().unwrap();
        assert_eq!(seq.to_string(), s);
    }

    #[test]
    fn collect_and_extend() {
        let mut seq: DnaSequence = [Base::A, Base::C].into_iter().collect();
        seq.extend([Base::G, Base::T]);
        assert_eq!(seq.to_string(), "ACGT");
        assert_eq!(seq.base(0), Some(Base::A));
        seq.push_ambiguous();
        assert_eq!(seq.base(4), None);
    }

    #[test]
    fn slice_extracts_range() {
        let seq: DnaSequence = "ACGTACGT".parse().unwrap();
        assert_eq!(seq.slice(2, 4).to_string(), "GTAC");
    }

    #[test]
    fn reverse_complement_involution_and_n() {
        let seq: DnaSequence = "ACGTN".parse().unwrap();
        assert_eq!(seq.reverse_complement().to_string(), "NACGT");
        assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=32")]
    fn zero_k_panics() {
        let seq: DnaSequence = "ACGT".parse().unwrap();
        let _ = seq.kmers(0);
    }
}
