//! Minimal FASTA reader/writer.

use std::fmt::Write as _;

use crate::error::GenomicsError;
use crate::sequence::DnaSequence;

/// One FASTA record: a header line and a sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// The header text (without the leading `>`).
    pub id: String,
    /// The sequence (multi-line bodies are concatenated).
    pub sequence: DnaSequence,
}

/// Parses FASTA text into records.
///
/// Accepts multi-line sequence bodies and blank lines between records.
///
/// # Errors
///
/// Returns [`GenomicsError::MalformedFasta`] if the text does not start with
/// a header, a record has an empty sequence, or a sequence line contains an
/// invalid character.
///
/// # Example
///
/// ```
/// use sieve_genomics::fasta;
///
/// let records = fasta::parse(">seq1\nACGT\nACGT\n>seq2\nTTTT\n")?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].sequence.len(), 8);
/// # Ok::<(), sieve_genomics::GenomicsError>(())
/// ```
pub fn parse(text: &str) -> Result<Vec<FastaRecord>, GenomicsError> {
    fn finish(
        id: String,
        body: &[u8],
        start: usize,
        records: &mut Vec<FastaRecord>,
    ) -> Result<(), GenomicsError> {
        if body.is_empty() {
            return Err(GenomicsError::MalformedFasta {
                line: start,
                reason: format!("record `{id}` has an empty sequence"),
            });
        }
        let sequence = DnaSequence::from_bytes(body).map_err(|e| match e {
            GenomicsError::InvalidBase { byte } => GenomicsError::MalformedFasta {
                line: start,
                reason: format!("invalid sequence byte 0x{byte:02x}"),
            },
            other => other,
        })?;
        records.push(FastaRecord { id, sequence });
        Ok(())
    }

    let mut records = Vec::new();
    let mut current: Option<(String, Vec<u8>, usize)> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some((id, body, start)) = current.take() {
                finish(id, &body, start, &mut records)?;
            }
            current = Some((header.trim().to_string(), Vec::new(), lineno));
        } else {
            let Some((_, body, _)) = current.as_mut() else {
                return Err(GenomicsError::MalformedFasta {
                    line: lineno,
                    reason: "sequence data before any `>` header".to_string(),
                });
            };
            // Validate eagerly so the error carries the right line number.
            DnaSequence::from_bytes(line.as_bytes()).map_err(|e| match e {
                GenomicsError::InvalidBase { byte } => GenomicsError::MalformedFasta {
                    line: lineno,
                    reason: format!("invalid sequence byte 0x{byte:02x}"),
                },
                other => other,
            })?;
            body.extend_from_slice(line.as_bytes());
        }
    }
    if let Some((id, body, start)) = current.take() {
        finish(id, &body, start, &mut records)?;
    }
    Ok(records)
}

/// Serializes records to FASTA text (60-column sequence lines).
#[must_use]
pub fn write(records: &[FastaRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = writeln!(out, ">{}", r.id);
        for chunk in r.sequence.as_bytes().chunks(60) {
            let _ = writeln!(out, "{}", std::str::from_utf8(chunk).expect("ASCII"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_record() {
        let rs = parse(">x desc\nACGT\n").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].id, "x desc");
        assert_eq!(rs[0].sequence.to_string(), "ACGT");
    }

    #[test]
    fn parse_multiline_body() {
        let rs = parse(">x\nACGT\nTTTT\n").unwrap();
        assert_eq!(rs[0].sequence.to_string(), "ACGTTTTT");
    }

    #[test]
    fn blank_lines_tolerated() {
        let rs = parse("\n>x\nACGT\n\n>y\nTT\n").unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn data_before_header_rejected() {
        let err = parse("ACGT\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn empty_record_rejected() {
        assert!(parse(">x\n>y\nACGT\n").is_err());
        assert!(parse(">x\nACGT\n>y\n").is_err());
    }

    #[test]
    fn invalid_byte_rejected_with_line() {
        let err = parse(">x\nAC!T\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn write_parse_round_trip() {
        let records = vec![
            FastaRecord {
                id: "a".into(),
                sequence: "ACGTNACGT".parse().unwrap(),
            },
            FastaRecord {
                id: "b".into(),
                sequence: "T".repeat(130).parse().unwrap(),
            },
        ];
        let text = write(&records);
        assert_eq!(parse(&text).unwrap(), records);
    }
}
