//! Sequence classification from k-mer hits.
//!
//! Mirrors the two strategies the paper's workloads use (Figure 3): CLARK
//! keeps a per-taxon hit counter and picks the majority; Kraken maps hits
//! onto the taxonomy and scores root-to-leaf paths.

use std::collections::HashMap;

use crate::db::KmerDatabase;
use crate::error::GenomicsError;
use crate::sequence::DnaSequence;
use crate::taxonomy::{TaxonId, Taxonomy};

/// The outcome of classifying one read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// The assigned taxon, or `None` if no k-mer hit the database.
    pub taxon: Option<TaxonId>,
    /// Number of query k-mers that hit the database.
    pub hit_kmers: usize,
    /// Total query k-mers examined.
    pub total_kmers: usize,
    /// Hits per taxon (the histogram of Figure 3, step 3).
    pub histogram: Vec<(TaxonId, usize)>,
}

impl Classification {
    /// Fraction of query k-mers that hit, in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.total_kmers == 0 {
            0.0
        } else {
            self.hit_kmers as f64 / self.total_kmers as f64
        }
    }
}

/// Builds the per-taxon hit histogram for a read.
fn histogram<D: KmerDatabase>(db: &D, read: &DnaSequence) -> (Vec<(TaxonId, usize)>, usize, usize) {
    let mut counts: HashMap<TaxonId, usize> = HashMap::new();
    let mut hits = 0;
    let mut total = 0;
    for (_, kmer) in read.kmers(db.k()) {
        total += 1;
        if let Some(taxon) = db.get(kmer) {
            hits += 1;
            *counts.entry(taxon).or_insert(0) += 1;
        }
    }
    let mut hist: Vec<(TaxonId, usize)> = counts.into_iter().collect();
    // Deterministic order: by count descending, then taxon id.
    hist.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    (hist, hits, total)
}

/// CLARK-style classifier: the taxon with the most k-mer hits wins.
///
/// # Example
///
/// ```
/// use sieve_genomics::{classify::ClarkClassifier, db::{HashDb, KmerDatabase},
///                      TaxonId, Kmer, DnaSequence};
///
/// let entries = vec![("ACG".parse::<Kmer>()?, TaxonId(5))];
/// let db = HashDb::from_entries(&entries, 3);
/// let read: DnaSequence = "TACGT".parse()?;
/// let result = ClarkClassifier::new(&db).classify(&read);
/// assert_eq!(result.taxon, Some(TaxonId(5)));
/// # Ok::<(), sieve_genomics::GenomicsError>(())
/// ```
#[derive(Debug)]
pub struct ClarkClassifier<'a, D> {
    db: &'a D,
}

impl<'a, D: KmerDatabase> ClarkClassifier<'a, D> {
    /// Creates a classifier over `db`.
    #[must_use]
    pub fn new(db: &'a D) -> Self {
        Self { db }
    }

    /// Classifies one read by majority vote.
    #[must_use]
    pub fn classify(&self, read: &DnaSequence) -> Classification {
        let (hist, hits, total) = histogram(self.db, read);
        Classification {
            taxon: hist.first().map(|(t, _)| *t),
            hit_kmers: hits,
            total_kmers: total,
            histogram: hist,
        }
    }
}

/// Kraken-style classifier: hits are weights on taxonomy nodes; the leaf
/// maximizing the summed weight of its root-to-leaf path wins.
#[derive(Debug)]
pub struct KrakenClassifier<'a, D> {
    db: &'a D,
    taxonomy: &'a Taxonomy,
}

impl<'a, D: KmerDatabase> KrakenClassifier<'a, D> {
    /// Creates a classifier over `db` with taxonomy `taxonomy`.
    #[must_use]
    pub fn new(db: &'a D, taxonomy: &'a Taxonomy) -> Self {
        Self { db, taxonomy }
    }

    /// Classifies one read by maximum root-to-leaf path weight.
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::UnknownTaxon`] if the database contains a
    /// taxon missing from the taxonomy.
    pub fn classify(&self, read: &DnaSequence) -> Result<Classification, GenomicsError> {
        let (hist, hits, total) = histogram(self.db, read);
        if hist.is_empty() {
            return Ok(Classification {
                taxon: None,
                hit_kmers: hits,
                total_kmers: total,
                histogram: hist,
            });
        }
        // Score each hit taxon by the weight of its root-to-leaf path
        // (every hit on an ancestor supports the descendant).
        let weights: HashMap<TaxonId, usize> = hist.iter().copied().collect();
        let mut best: Option<(usize, TaxonId)> = None;
        for &(candidate, _) in &hist {
            let path = self.taxonomy.path_to_root(candidate)?;
            let score: usize = path.iter().filter_map(|t| weights.get(t)).sum();
            let better = match best {
                None => true,
                Some((best_score, best_taxon)) => {
                    score > best_score || (score == best_score && candidate < best_taxon)
                }
            };
            if better {
                best = Some((score, candidate));
            }
        }
        Ok(Classification {
            taxon: best.map(|(_, t)| t),
            hit_kmers: hits,
            total_kmers: total,
            histogram: hist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::HashDb;
    use crate::kmer::Kmer;

    fn kmer(s: &str) -> Kmer {
        s.parse().unwrap()
    }

    #[test]
    fn clark_majority_wins() {
        let entries = vec![
            (kmer("ACG"), TaxonId(1)),
            (kmer("CGT"), TaxonId(1)),
            (kmer("GTA"), TaxonId(2)),
        ];
        let db = HashDb::from_entries(&entries, 3);
        let read: DnaSequence = "ACGTA".parse().unwrap();
        let c = ClarkClassifier::new(&db).classify(&read);
        assert_eq!(c.taxon, Some(TaxonId(1)));
        assert_eq!(c.hit_kmers, 3);
        assert_eq!(c.total_kmers, 3);
        assert_eq!(c.histogram[0], (TaxonId(1), 2));
    }

    #[test]
    fn no_hits_gives_none() {
        let db = HashDb::from_entries(&[], 3);
        let read: DnaSequence = "ACGTA".parse().unwrap();
        let c = ClarkClassifier::new(&db).classify(&read);
        assert_eq!(c.taxon, None);
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn tie_breaks_to_smaller_taxon() {
        let entries = vec![(kmer("ACG"), TaxonId(9)), (kmer("CGT"), TaxonId(2))];
        let db = HashDb::from_entries(&entries, 3);
        let read: DnaSequence = "ACGT".parse().unwrap();
        let c = ClarkClassifier::new(&db).classify(&read);
        assert_eq!(c.taxon, Some(TaxonId(2)));
    }

    #[test]
    fn kraken_ancestor_hits_support_leaf() {
        let mut tax = Taxonomy::new();
        let genus = tax.add_child(TaxonId::ROOT, "g").unwrap();
        let sp1 = tax.add_child(genus, "s1").unwrap();
        let sp2 = tax.add_child(genus, "s2").unwrap();
        // Two hits on the genus + one on sp1: sp1's path scores 3,
        // sp2's path scores 2, genus scores 2.
        let entries = vec![
            (kmer("ACG"), genus),
            (kmer("CGT"), genus),
            (kmer("GTA"), sp1),
        ];
        let db = HashDb::from_entries(&entries, 3);
        let read: DnaSequence = "ACGTA".parse().unwrap();
        let c = KrakenClassifier::new(&db, &tax).classify(&read).unwrap();
        assert_eq!(c.taxon, Some(sp1));
        let _ = sp2;
    }

    #[test]
    fn kraken_no_hits_gives_none() {
        let tax = Taxonomy::new();
        let db = HashDb::from_entries(&[], 3);
        let read: DnaSequence = "ACGTA".parse().unwrap();
        let c = KrakenClassifier::new(&db, &tax).classify(&read).unwrap();
        assert_eq!(c.taxon, None);
    }

    #[test]
    fn kraken_unknown_taxon_errors() {
        let tax = Taxonomy::new(); // only root
        let entries = vec![(kmer("ACG"), TaxonId(42))];
        let db = HashDb::from_entries(&entries, 3);
        let read: DnaSequence = "ACG".parse().unwrap();
        assert!(KrakenClassifier::new(&db, &tax).classify(&read).is_err());
    }

    #[test]
    fn hit_rate_computation() {
        let entries = vec![(kmer("ACG"), TaxonId(1))];
        let db = HashDb::from_entries(&entries, 3);
        let read: DnaSequence = "ACGT".parse().unwrap(); // kmers ACG, CGT
        let c = ClarkClassifier::new(&db).classify(&read);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }
}
