//! Packed k-mers (k ≤ 32) in the paper's 2-bit encoding.

use std::fmt;
use std::str::FromStr;

use crate::base::Base;
use crate::error::GenomicsError;

/// Maximum supported k for a 64-bit packed k-mer.
pub const MAX_K: usize = 32;

/// XOR with this mask complements every 2-bit base field at once: under
/// the paper's encoding (A=00, C=01, T=10, G=11) complementation is
/// exactly "flip the high bit of the field" (A↔T is 00↔10, C↔G is 01↔11).
const COMPLEMENT_MASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// Reverse-complements a low-aligned 2k-bit packing in a handful of
/// full-width `u64` operations — the SWAR kernel behind
/// [`Kmer::reverse_complement`] (DESIGN.md §9).
///
/// One XOR complements all 32 base fields (the unused high fields become
/// garbage, but they land in the discarded low bits after the reversal);
/// two mask/shift rounds plus a byte swap reverse the 32 fields; the
/// final shift re-aligns the k real fields to the low 2k bits. Every base
/// — including the middle base of an odd k — passes through the same XOR,
/// so the scalar and SWAR twins agree on all 4^k values (proven
/// exhaustively for k ≤ 11 in `tests/kernel_equivalence.rs`).
#[inline]
#[must_use]
pub fn revcomp_bits(bits: u64, k: usize) -> u64 {
    debug_assert!((1..=MAX_K).contains(&k), "k must be in 1..=32");
    let x = bits ^ COMPLEMENT_MASK;
    // Reverse the 32 2-bit fields: swap adjacent fields, then adjacent
    // nibbles, then the 8 bytes.
    let x = ((x & 0x3333_3333_3333_3333) << 2) | ((x >> 2) & 0x3333_3333_3333_3333);
    let x = ((x & 0x0F0F_0F0F_0F0F_0F0F) << 4) | ((x >> 4) & 0x0F0F_0F0F_0F0F_0F0F);
    let x = x.swap_bytes();
    x >> (64 - 2 * k)
}

/// Canonical form of a low-aligned 2k-bit packing: the branchless minimum
/// of the forward packing and its reverse complement.
#[inline]
#[must_use]
pub fn canonical_bits(bits: u64, k: usize) -> u64 {
    bits.min(revcomp_bits(bits, k))
}

/// A k-mer packed into a `u64`, first base in the most significant bits.
///
/// Because the first base occupies the high bits, **integer order equals
/// lexicographic order** (under the paper's `A<C<T<G` encoding). That is
/// exactly the property Sieve's k-mer → subarray index table relies on:
/// reference k-mers are sorted "alphanumerically", partitioned across
/// subarrays, and routed by comparing integer values (§IV-D).
///
/// Bit `j` of a k-mer (see [`Kmer::bit`]) is the bit stored in DRAM row `j`
/// of the subarray's Region 1, i.e. the bit compared during the `j`-th row
/// activation of a lookup.
///
/// # Example
///
/// ```
/// use sieve_genomics::Kmer;
///
/// let a: Kmer = "ACT".parse()?;
/// let b: Kmer = "AGT".parse()?;
/// assert!(a < b);              // C (01) < G (11) lexicographically
/// assert_eq!(a.lcp_bits(&b), 2); // A = 00 shared; C=01 vs G=11 differ at bit 2
/// # Ok::<(), sieve_genomics::GenomicsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Kmer {
    bits: u64,
    k: u8,
}

impl Kmer {
    /// Builds a k-mer from bases. `k` is taken from the iterator length.
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::InvalidK`] if the iterator yields 0 or more
    /// than [`MAX_K`] bases.
    pub fn from_bases<I: IntoIterator<Item = Base>>(bases: I) -> Result<Self, GenomicsError> {
        let mut bits = 0u64;
        let mut k = 0usize;
        for b in bases {
            if k == MAX_K {
                return Err(GenomicsError::InvalidK { k: k + 1 });
            }
            bits = (bits << 2) | u64::from(b.to_bits());
            k += 1;
        }
        if k == 0 {
            return Err(GenomicsError::InvalidK { k: 0 });
        }
        Ok(Self { bits, k: k as u8 })
    }

    /// Builds a k-mer from a packed integer.
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::InvalidK`] if `k` is outside `1..=32` or
    /// `bits` has set bits above position `2k`.
    pub fn from_u64(bits: u64, k: usize) -> Result<Self, GenomicsError> {
        if k == 0 || k > MAX_K {
            return Err(GenomicsError::InvalidK { k });
        }
        if k < MAX_K && bits >> (2 * k) != 0 {
            return Err(GenomicsError::InvalidK { k });
        }
        Ok(Self { bits, k: k as u8 })
    }

    /// Builds a k-mer from pre-validated packed bits — the hot-path
    /// constructor for [`crate::pack`]'s extractor, which maintains the
    /// `bits >> 2k == 0` invariant itself.
    #[inline]
    #[must_use]
    pub(crate) fn from_bits_unchecked(bits: u64, k: usize) -> Self {
        debug_assert!((1..=MAX_K).contains(&k), "k must be in 1..=32");
        debug_assert!(k == MAX_K || bits >> (2 * k) == 0, "bits above 2k");
        Self { bits, k: k as u8 }
    }

    /// The k of this k-mer.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// The packed 2k-bit integer value (first base most significant).
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Number of bits (2k) — the number of DRAM rows a lookup may activate.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        2 * self.k()
    }

    /// The `i`-th base (0 = first/leftmost).
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    #[must_use]
    pub fn base(&self, i: usize) -> Base {
        assert!(i < self.k(), "base index {i} out of range for k={}", self.k);
        let shift = 2 * (self.k() - 1 - i);
        Base::from_bits(((self.bits >> shift) & 0b11) as u8)
    }

    /// Bit `j` in row-activation order: bit 0 is the high bit of the first
    /// base (stored in Region-1 row 0), bit `2k-1` the low bit of the last
    /// base.
    ///
    /// # Panics
    ///
    /// Panics if `j >= 2k`.
    #[must_use]
    pub fn bit(&self, j: usize) -> bool {
        assert!(j < self.bit_len(), "bit index {j} out of range");
        (self.bits >> (self.bit_len() - 1 - j)) & 1 == 1
    }

    /// Length (in bits) of the longest common prefix with `other`, in
    /// row-activation order. This is the number of row activations after
    /// which the two k-mers are still indistinguishable — the quantity that
    /// drives the Early Termination Mechanism.
    ///
    /// # Panics
    ///
    /// Panics if the two k-mers have different k.
    #[must_use]
    pub fn lcp_bits(&self, other: &Kmer) -> usize {
        assert_eq!(self.k, other.k, "lcp_bits requires equal k");
        let diff = self.bits ^ other.bits;
        if diff == 0 {
            return self.bit_len();
        }
        // Position of the highest differing bit, from the top of the 2k window.
        let top = 64 - self.bit_len() as u32;
        (diff.leading_zeros() - top) as usize
    }

    /// The k-mer one base further along a sequence: drops the first base,
    /// appends `next`. This is the rolling-window step used when extracting
    /// successive query k-mers from a read.
    #[must_use]
    pub fn shifted(&self, next: Base) -> Self {
        let mask = if self.k() == MAX_K {
            u64::MAX
        } else {
            (1u64 << (2 * self.k())) - 1
        };
        Self {
            bits: ((self.bits << 2) | u64::from(next.to_bits())) & mask,
            k: self.k,
        }
    }

    /// The reverse complement of this k-mer ([`revcomp_bits`], the SWAR
    /// kernel). Bit-identical to [`Kmer::reverse_complement_scalar`].
    #[must_use]
    pub fn reverse_complement(&self) -> Self {
        Self {
            bits: revcomp_bits(self.bits, self.k()),
            k: self.k,
        }
    }

    /// The scalar twin of [`Kmer::reverse_complement`]: one
    /// base-unpack/complement/repack per position. Kept as the readable
    /// reference the differential tests compare the SWAR kernel against.
    #[must_use]
    pub fn reverse_complement_scalar(&self) -> Self {
        let mut bits = 0u64;
        for i in 0..self.k() {
            bits = (bits << 2) | u64::from(self.base(self.k() - 1 - i).complement().to_bits());
        }
        Self { bits, k: self.k }
    }

    /// The canonical form: the lexicographic minimum of this k-mer and its
    /// reverse complement (the convention Kraken-family tools store).
    /// Selected branchlessly via [`canonical_bits`].
    #[must_use]
    pub fn canonical(&self) -> Self {
        Self {
            bits: canonical_bits(self.bits, self.k()),
            k: self.k,
        }
    }

    /// The scalar twin of [`Kmer::canonical`], built on
    /// [`Kmer::reverse_complement_scalar`] and an explicit comparison.
    #[must_use]
    pub fn canonical_scalar(&self) -> Self {
        let rc = self.reverse_complement_scalar();
        if rc.bits < self.bits {
            rc
        } else {
            *self
        }
    }

    /// Iterator over the bases, leftmost first.
    pub fn bases(&self) -> impl Iterator<Item = Base> + '_ {
        (0..self.k()).map(move |i| self.base(i))
    }
}

impl fmt::Display for Kmer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.bases() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromStr for Kmer {
    type Err = GenomicsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bases: Result<Vec<Base>, _> = s.bytes().map(Base::from_ascii).collect();
        Kmer::from_bases(bases?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        let s = "ACTGACTGACTGACTGACTGACTGACTGACT"; // 31 bases
        let k: Kmer = s.parse().unwrap();
        assert_eq!(k.k(), 31);
        assert_eq!(k.to_string(), s);
    }

    #[test]
    fn integer_order_is_lexicographic() {
        let words = ["AAA", "AAC", "AAT", "AAG", "ACA", "TTT", "GGG"];
        let mut kmers: Vec<Kmer> = words.iter().map(|w| w.parse().unwrap()).collect();
        let sorted_by_int = {
            let mut v = kmers.clone();
            v.sort();
            v
        };
        kmers.sort_by_key(std::string::ToString::to_string);
        // NOTE: paper encoding is A<C<T<G, so "lexicographic" means under
        // that ordering, not ASCII. Compare against base-wise ordering.
        let mut by_bases = sorted_by_int.clone();
        by_bases.sort_by(|a, b| {
            a.bases()
                .map(Base::to_bits)
                .collect::<Vec<_>>()
                .cmp(&b.bases().map(Base::to_bits).collect::<Vec<_>>())
        });
        assert_eq!(sorted_by_int, by_bases);
    }

    #[test]
    fn bit_order_matches_row_activation_order() {
        // "CG" = C(01) G(11) → bits 0111, rows see 0,1,1,1.
        let k: Kmer = "CG".parse().unwrap();
        assert!(!k.bit(0));
        assert!(k.bit(1));
        assert!(k.bit(2));
        assert!(k.bit(3));
    }

    #[test]
    fn lcp_bits_examples() {
        let a: Kmer = "ACT".parse().unwrap();
        let b: Kmer = "AGT".parse().unwrap();
        // A=00 shared (2 bits), C=01 vs G=11 differ on the first bit of
        // base 1 → LCP=3? C's high bit is 0, G's is 1 → they differ at bit
        // index 2, so LCP = 2.
        assert_eq!(a.lcp_bits(&b), 2);
        let c: Kmer = "ACT".parse().unwrap();
        assert_eq!(a.lcp_bits(&c), 6);
        let d: Kmer = "ACG".parse().unwrap();
        // T=10 vs G=11 differ in the low bit → LCP = 5.
        assert_eq!(a.lcp_bits(&d), 5);
    }

    #[test]
    #[should_panic(expected = "equal k")]
    fn lcp_requires_equal_k() {
        let a: Kmer = "ACT".parse().unwrap();
        let b: Kmer = "AC".parse().unwrap();
        let _ = a.lcp_bits(&b);
    }

    #[test]
    fn shifted_slides_the_window() {
        let k: Kmer = "ACT".parse().unwrap();
        assert_eq!(k.shifted(Base::G).to_string(), "CTG");
    }

    #[test]
    fn shifted_works_at_max_k() {
        let s: String = "A".repeat(32);
        let k: Kmer = s.parse().unwrap();
        let shifted = k.shifted(Base::G);
        assert_eq!(shifted.k(), 32);
        assert_eq!(shifted.base(31), Base::G);
        assert_eq!(shifted.base(0), Base::A);
    }

    #[test]
    fn reverse_complement_and_canonical() {
        let k: Kmer = "AACG".parse().unwrap();
        assert_eq!(k.reverse_complement().to_string(), "CGTT");
        assert_eq!(k.reverse_complement().reverse_complement(), k);
        let canon = k.canonical();
        assert!(canon.bits() <= k.bits());
        assert_eq!(canon, k.reverse_complement().canonical());
    }

    #[test]
    fn swar_revcomp_matches_scalar_twin() {
        // A deterministic xorshift walk over every k, including odd k
        // (middle base) and k=32 (no spare bits).
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for k in 1..=MAX_K {
            for _ in 0..200 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let bits = if k == MAX_K {
                    x
                } else {
                    x & ((1u64 << (2 * k)) - 1)
                };
                let kmer = Kmer::from_u64(bits, k).unwrap();
                assert_eq!(
                    kmer.reverse_complement(),
                    kmer.reverse_complement_scalar(),
                    "revcomp twins disagree at k={k} bits={bits:#x}"
                );
                assert_eq!(
                    kmer.canonical(),
                    kmer.canonical_scalar(),
                    "canonical twins disagree at k={k} bits={bits:#x}"
                );
            }
        }
    }

    #[test]
    fn from_u64_validates() {
        assert!(Kmer::from_u64(0, 0).is_err());
        assert!(Kmer::from_u64(0, 33).is_err());
        assert!(Kmer::from_u64(1 << 6, 3).is_err()); // bit above 2k=6
        let k = Kmer::from_u64(0b00_01_10, 3).unwrap();
        assert_eq!(k.to_string(), "ACT");
        assert!(Kmer::from_u64(u64::MAX, 32).is_ok());
    }

    #[test]
    fn empty_and_oversized_rejected() {
        assert!(Kmer::from_bases(std::iter::empty()).is_err());
        assert!(Kmer::from_bases(std::iter::repeat_n(Base::A, 33)).is_err());
    }

    #[test]
    fn base_accessor() {
        let k: Kmer = "ACTG".parse().unwrap();
        assert_eq!(k.base(0), Base::A);
        assert_eq!(k.base(3), Base::G);
    }
}
