//! Error types for the genomics substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the genomics substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenomicsError {
    /// A byte that is not a valid unambiguous DNA base.
    InvalidBase {
        /// The offending (upper-cased) byte.
        byte: u8,
    },
    /// A k outside the supported range (1..=32 for packed 64-bit k-mers).
    InvalidK {
        /// The requested k.
        k: usize,
    },
    /// Malformed FASTA input.
    MalformedFasta {
        /// 1-based line number of the problem.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// Malformed FASTQ input.
    MalformedFastq {
        /// 1-based line number of the problem.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A taxon id referenced a node that does not exist in the taxonomy.
    UnknownTaxon {
        /// The missing taxon id.
        taxon: u32,
    },
}

impl fmt::Display for GenomicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidBase { byte } => {
                write!(f, "invalid DNA base byte 0x{byte:02x}")
            }
            Self::InvalidK { k } => {
                write!(f, "k must be in 1..=32 for packed 64-bit k-mers, got {k}")
            }
            Self::MalformedFasta { line, reason } => {
                write!(f, "malformed FASTA at line {line}: {reason}")
            }
            Self::MalformedFastq { line, reason } => {
                write!(f, "malformed FASTQ at line {line}: {reason}")
            }
            Self::UnknownTaxon { taxon } => write!(f, "unknown taxon id {taxon}"),
        }
    }
}

impl Error for GenomicsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(GenomicsError::InvalidBase { byte: b'N' }
            .to_string()
            .contains("0x4e"));
        assert!(GenomicsError::InvalidK { k: 33 }.to_string().contains("33"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<GenomicsError>();
    }
}
