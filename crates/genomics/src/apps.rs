//! Instrumented mini-pipelines for the six applications of Figure 1.
//!
//! Each pipeline performs real (scaled-down) work and reports wall-clock
//! time per stage, reproducing the paper's observation that k-mer matching
//! dominates end-to-end runtime. Stage names follow Figure 1's legend.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::db::{HashDb, HybridDb, KmerDatabase, SortedDb};
use crate::sequence::DnaSequence;
use crate::synth::SyntheticDataset;
use crate::taxonomy::TaxonId;

/// The applications profiled in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Kraken: hybrid signature-bucket database + taxonomy-tree scoring.
    Kraken,
    /// CLARK: hash-table database + per-read classification tables.
    Clark,
    /// stringMLST: hash lookups + read filtering.
    StringMlst,
    /// PhyMer: haplogroup scoring over k-mer hits.
    Phymer,
    /// LMAT: hash lookups + taxonomy walk.
    Lmat,
    /// BLASTN: k-mer seeding + word extension + verification.
    Blastn,
}

impl AppKind {
    /// All six apps in Figure 1 order.
    pub const ALL: [AppKind; 6] = [
        AppKind::Kraken,
        AppKind::Clark,
        AppKind::StringMlst,
        AppKind::Phymer,
        AppKind::Lmat,
        AppKind::Blastn,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Kraken => "Kraken",
            AppKind::Clark => "CLARK",
            AppKind::StringMlst => "stringMLST",
            AppKind::Phymer => "Phymer",
            AppKind::Lmat => "LMAT",
            AppKind::Blastn => "BLASTN",
        }
    }
}

/// Pipeline stages, matching Figure 1's legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Looking up query k-mers in the reference database.
    KmerMatching,
    /// Building per-read pruned taxonomy trees (Kraken/LMAT).
    BuildTaxonomyTrees,
    /// Building per-read classification tables (CLARK).
    BuildClassificationTable,
    /// Extending word hits (BLASTN).
    WordExtendingHits,
    /// Updating per-read state (CLARK).
    UpdateReads,
    /// Filtering reads by hit coverage (stringMLST).
    ReadsFiltering,
    /// Final per-read classification decision.
    Classification,
    /// Verifying candidate alignments (BLASTN).
    Verification,
    /// Everything else (parsing, bookkeeping).
    Other,
}

impl Stage {
    /// Display name matching Figure 1's legend.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::KmerMatching => "K-mer Matching",
            Stage::BuildTaxonomyTrees => "Build Taxonomy Trees",
            Stage::BuildClassificationTable => "Build Classification Table",
            Stage::WordExtendingHits => "Word Extending Hits",
            Stage::UpdateReads => "Update Reads",
            Stage::ReadsFiltering => "Reads Filtering",
            Stage::Classification => "Classification",
            Stage::Verification => "Verification",
            Stage::Other => "Other",
        }
    }
}

/// A profiled run of one application.
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Which application ran.
    pub app: AppKind,
    /// Wall-clock time per stage.
    pub stages: Vec<(Stage, Duration)>,
    /// Reads classified (for sanity checks).
    pub reads_classified: usize,
}

impl AppProfile {
    /// Total time across stages.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }

    /// Fraction of total time in `stage`, in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self, stage: Stage) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        self.stages
            .iter()
            .filter(|(s, _)| *s == stage)
            .map(|(_, d)| d.as_secs_f64())
            .sum::<f64>()
            / total
    }
}

/// Profiles `app` over `reads` against `dataset`, returning per-stage times.
///
/// # Panics
///
/// Panics if the dataset's taxonomy is inconsistent with its entries
/// (cannot happen for datasets built by [`crate::synth::make_dataset`]).
#[must_use]
pub fn profile_app(app: AppKind, dataset: &SyntheticDataset, reads: &[DnaSequence]) -> AppProfile {
    match app {
        AppKind::Kraken => profile_kraken(dataset, reads),
        AppKind::Clark => profile_clark(dataset, reads),
        AppKind::StringMlst => profile_stringmlst(dataset, reads),
        AppKind::Phymer => profile_phymer(dataset, reads),
        AppKind::Lmat => profile_lmat(dataset, reads),
        AppKind::Blastn => profile_blastn(dataset, reads),
    }
}

/// The "Other" stage: real input parsing work (serialize + reparse the
/// reads as FASTA, as the apps' readers do). Database construction is NOT
/// included — it is offline in every app, and Figure 1 shows online time.
fn parse_stage(reads: &[DnaSequence]) -> Duration {
    let records: Vec<crate::fasta::FastaRecord> = reads
        .iter()
        .enumerate()
        .map(|(i, seq)| crate::fasta::FastaRecord {
            id: format!("read-{i}"),
            sequence: seq.clone(),
        })
        .collect();
    let text = crate::fasta::write(&records);
    let start = Instant::now();
    let parsed = crate::fasta::parse(&text).expect("round-trip parse");
    assert_eq!(parsed.len(), reads.len());
    start.elapsed()
}

/// Collects the k-mer hits of each read, timed as the matching stage.
fn match_stage<D: KmerDatabase>(db: &D, reads: &[DnaSequence]) -> (Vec<Vec<TaxonId>>, Duration) {
    let start = Instant::now();
    let mut all_hits = Vec::with_capacity(reads.len());
    for read in reads {
        let mut hits = Vec::new();
        for (_, kmer) in read.kmers(db.k()) {
            if let Some(taxon) = db.get(kmer) {
                hits.push(taxon);
            }
        }
        all_hits.push(hits);
    }
    (all_hits, start.elapsed())
}

fn profile_kraken(dataset: &SyntheticDataset, reads: &[DnaSequence]) -> AppProfile {
    let db = HybridDb::from_entries(&dataset.entries, dataset.k);
    let other = parse_stage(reads);

    let (all_hits, matching) = match_stage(&db, reads);

    // Build per-read pruned taxonomy trees (hit-weight maps over ancestry).
    let t1 = Instant::now();
    let mut trees: Vec<HashMap<TaxonId, usize>> = Vec::with_capacity(reads.len());
    for hits in &all_hits {
        let mut weights: HashMap<TaxonId, usize> = HashMap::new();
        for &taxon in hits {
            for node in dataset.taxonomy.path_to_root(taxon).expect("valid taxon") {
                *weights.entry(node).or_insert(0) += 1;
            }
        }
        trees.push(weights);
    }
    let build_trees = t1.elapsed();

    // Classification: max root-to-leaf weight over the per-read tree.
    let t2 = Instant::now();
    let mut classified = 0;
    for (hits, weights) in all_hits.iter().zip(&trees) {
        let best = hits
            .iter()
            .map(|taxon| {
                let score: usize = dataset
                    .taxonomy
                    .path_to_root(*taxon)
                    .expect("valid taxon")
                    .iter()
                    .filter_map(|n| weights.get(n))
                    .sum();
                (score, *taxon)
            })
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        if best.is_some() {
            classified += 1;
        }
    }
    let classification = t2.elapsed();

    AppProfile {
        app: AppKind::Kraken,
        stages: vec![
            (Stage::KmerMatching, matching),
            (Stage::BuildTaxonomyTrees, build_trees),
            (Stage::Classification, classification),
            (Stage::Other, other),
        ],
        reads_classified: classified,
    }
}

fn profile_clark(dataset: &SyntheticDataset, reads: &[DnaSequence]) -> AppProfile {
    let db = HashDb::from_entries(&dataset.entries, dataset.k);
    let other = parse_stage(reads);

    let (all_hits, matching) = match_stage(&db, reads);

    // Build per-read classification tables (taxon → count).
    let t1 = Instant::now();
    let mut tables: Vec<HashMap<TaxonId, usize>> = Vec::with_capacity(reads.len());
    for hits in &all_hits {
        let mut table: HashMap<TaxonId, usize> = HashMap::new();
        for &t in hits {
            *table.entry(t).or_insert(0) += 1;
        }
        tables.push(table);
    }
    let build_table = t1.elapsed();

    // Update reads: record the best assignment back onto each read.
    let t2 = Instant::now();
    let mut classified = 0;
    let mut assignments = Vec::with_capacity(reads.len());
    for table in &tables {
        let best = table
            .iter()
            .max_by_key(|(t, c)| (**c, std::cmp::Reverse(t.0)))
            .map(|(t, _)| *t);
        if best.is_some() {
            classified += 1;
        }
        assignments.push(best);
    }
    let update = t2.elapsed();
    let _ = assignments;

    AppProfile {
        app: AppKind::Clark,
        stages: vec![
            (Stage::KmerMatching, matching),
            (Stage::BuildClassificationTable, build_table),
            (Stage::UpdateReads, update),
            (Stage::Other, other),
        ],
        reads_classified: classified,
    }
}

fn profile_stringmlst(dataset: &SyntheticDataset, reads: &[DnaSequence]) -> AppProfile {
    let db = HashDb::from_entries(&dataset.entries, dataset.k);
    let other = parse_stage(reads);

    let (all_hits, matching) = match_stage(&db, reads);

    // Reads filtering: keep reads whose hit coverage clears a threshold.
    let t1 = Instant::now();
    let mut kept = 0;
    for (read, hits) in reads.iter().zip(&all_hits) {
        let total = read.kmer_count(dataset.k).max(1);
        if hits.len() * 10 >= total {
            kept += 1;
        }
    }
    let filtering = t1.elapsed();

    AppProfile {
        app: AppKind::StringMlst,
        stages: vec![
            (Stage::KmerMatching, matching),
            (Stage::ReadsFiltering, filtering),
            (Stage::Other, other),
        ],
        reads_classified: kept,
    }
}

fn profile_phymer(dataset: &SyntheticDataset, reads: &[DnaSequence]) -> AppProfile {
    let db = SortedDb::from_entries(dataset.entries.clone(), dataset.k);
    let other = parse_stage(reads);

    let (all_hits, matching) = match_stage(&db, reads);

    // Classification: majority vote per read (haplogroup scoring).
    let t1 = Instant::now();
    let mut classified = 0;
    for hits in &all_hits {
        let mut counts: HashMap<TaxonId, usize> = HashMap::new();
        for &t in hits {
            *counts.entry(t).or_insert(0) += 1;
        }
        if counts
            .iter()
            .max_by_key(|(t, c)| (**c, std::cmp::Reverse(t.0)))
            .is_some()
        {
            classified += 1;
        }
    }
    let classification = t1.elapsed();

    AppProfile {
        app: AppKind::Phymer,
        stages: vec![
            (Stage::KmerMatching, matching),
            (Stage::Classification, classification),
            (Stage::Other, other),
        ],
        reads_classified: classified,
    }
}

fn profile_lmat(dataset: &SyntheticDataset, reads: &[DnaSequence]) -> AppProfile {
    let db = HashDb::from_entries(&dataset.entries, dataset.k);
    let other = parse_stage(reads);

    let (all_hits, matching) = match_stage(&db, reads);

    // Taxonomy walk per hit (LMAT's per-hit LCA bookkeeping).
    let t1 = Instant::now();
    let mut classified = 0;
    for hits in &all_hits {
        let mut current: Option<TaxonId> = None;
        for &t in hits {
            current = Some(match current {
                None => t,
                Some(prev) => dataset.taxonomy.lca(prev, t).expect("valid taxa"),
            });
        }
        if current.is_some() {
            classified += 1;
        }
    }
    let walk = t1.elapsed();

    AppProfile {
        app: AppKind::Lmat,
        stages: vec![
            (Stage::KmerMatching, matching),
            (Stage::BuildTaxonomyTrees, walk),
            (Stage::Other, other),
        ],
        reads_classified: classified,
    }
}

fn profile_blastn(dataset: &SyntheticDataset, reads: &[DnaSequence]) -> AppProfile {
    let db = HashDb::from_entries(&dataset.entries, dataset.k);
    // Offline seed index: k-mer bits → (genome, position), as BLAST builds
    // word-position lists when formatting the database.
    let mut seed_index: HashMap<u64, (usize, usize)> = HashMap::new();
    for (gi, (_, genome)) in dataset.genomes.iter().enumerate() {
        for (pos, kmer) in genome.kmers(dataset.k) {
            seed_index.entry(kmer.bits()).or_insert((gi, pos));
        }
    }
    let other = parse_stage(reads);

    let start = Instant::now();
    let mut seed_hits: Vec<(usize, usize, u64)> = Vec::new(); // (read, offset, kmer bits)
    for (ri, read) in reads.iter().enumerate() {
        for (off, kmer) in read.kmers(dataset.k) {
            if db.get(kmer).is_some() {
                seed_hits.push((ri, off, kmer.bits()));
            }
        }
    }
    let matching = start.elapsed();

    // Word extension: extend each seed rightward against the source genome.
    let t1 = Instant::now();
    let mut extended = 0usize;
    for &(ri, off, bits) in &seed_hits {
        if let Some(&(gi, gpos)) = seed_index.get(&bits) {
            let read_bytes = reads[ri].as_bytes();
            let gen_bytes = dataset.genomes[gi].1.as_bytes();
            let mut len = dataset.k;
            while off + len < read_bytes.len()
                && gpos + len < gen_bytes.len()
                && read_bytes[off + len] == gen_bytes[gpos + len]
            {
                len += 1;
            }
            extended += len;
        }
    }
    let extension = t1.elapsed();

    // Verification: score the extended candidates.
    let t2 = Instant::now();
    let classified = seed_hits
        .iter()
        .map(|(ri, ..)| *ri)
        .collect::<std::collections::HashSet<_>>()
        .len();
    let verification = t2.elapsed();
    let _ = extended;

    AppProfile {
        app: AppKind::Blastn,
        stages: vec![
            (Stage::KmerMatching, matching),
            (Stage::WordExtendingHits, extension),
            (Stage::Verification, verification),
            (Stage::Other, other),
        ],
        reads_classified: classified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{make_dataset_with, simulate_reads, ReadSimConfig};

    fn setup() -> (SyntheticDataset, Vec<DnaSequence>) {
        let ds = make_dataset_with(8, 2048, 15, 21);
        let (reads, _) = simulate_reads(
            &ds,
            ReadSimConfig {
                read_len: 92,
                from_reference: 0.5,
                error_rate: 0.01,
                n_rate: 0.001,
            },
            200,
            22,
        );
        (ds, reads)
    }

    #[test]
    fn every_app_profiles_and_sums() {
        let (ds, reads) = setup();
        for app in AppKind::ALL {
            let p = profile_app(app, &ds, &reads);
            assert_eq!(p.app, app);
            assert!(p.total() > Duration::ZERO, "{:?} total is zero", app);
            let covered: f64 = p.stages.iter().map(|(s, _)| p.fraction(*s)).sum();
            assert!(
                (covered - 1.0).abs() < 1e-9,
                "{:?} fractions {covered}",
                app
            );
        }
    }

    #[test]
    fn kmer_matching_dominates() {
        // The Figure-1 claim: matching is the largest stage in every app.
        let (ds, reads) = setup();
        for app in AppKind::ALL {
            let p = profile_app(app, &ds, &reads);
            let matching = p.fraction(Stage::KmerMatching);
            for (stage, _) in &p.stages {
                if *stage != Stage::KmerMatching {
                    assert!(
                        matching >= p.fraction(*stage),
                        "{:?}: {} ({matching:.3}) not dominant over {:?} ({:.3})",
                        app,
                        Stage::KmerMatching.name(),
                        stage,
                        p.fraction(*stage)
                    );
                }
            }
        }
    }

    #[test]
    fn sampled_reads_get_classified() {
        let (ds, reads) = setup();
        let p = profile_app(AppKind::Clark, &ds, &reads);
        // Half the reads came from reference genomes; most should classify.
        assert!(
            p.reads_classified > reads.len() / 4,
            "only {} of {} classified",
            p.reads_classified,
            reads.len()
        );
    }

    #[test]
    fn stage_names_match_figure_1_legend() {
        assert_eq!(Stage::KmerMatching.name(), "K-mer Matching");
        assert_eq!(Stage::WordExtendingHits.name(), "Word Extending Hits");
        assert_eq!(AppKind::StringMlst.name(), "stringMLST");
    }
}
