//! Sequence and dataset statistics (GC content, ambiguity rate, length
//! distributions) — the quick-look numbers a pipeline reports before
//! matching.

use crate::base::Base;
use crate::sequence::DnaSequence;

/// Composition statistics of one sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequenceStats {
    /// Length in bases (including `N`s).
    pub len: usize,
    /// Fraction of unambiguous bases that are G or C.
    pub gc_content: f64,
    /// Fraction of positions that are `N`.
    pub n_rate: f64,
}

/// Computes composition statistics for one sequence.
///
/// # Example
///
/// ```
/// use sieve_genomics::{stats, DnaSequence};
///
/// let seq: DnaSequence = "GGCCAATT".parse()?;
/// let s = stats::sequence_stats(&seq);
/// assert!((s.gc_content - 0.5).abs() < 1e-12);
/// # Ok::<(), sieve_genomics::GenomicsError>(())
/// ```
#[must_use]
pub fn sequence_stats(seq: &DnaSequence) -> SequenceStats {
    let mut gc = 0usize;
    let mut acgt = 0usize;
    let mut n = 0usize;
    for i in 0..seq.len() {
        match seq.base(i) {
            Some(Base::G | Base::C) => {
                gc += 1;
                acgt += 1;
            }
            Some(_) => acgt += 1,
            None => n += 1,
        }
    }
    SequenceStats {
        len: seq.len(),
        gc_content: if acgt == 0 {
            0.0
        } else {
            gc as f64 / acgt as f64
        },
        n_rate: if seq.is_empty() {
            0.0
        } else {
            n as f64 / seq.len() as f64
        },
    }
}

/// Length/composition summary of a read set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadSetStats {
    /// Number of reads.
    pub reads: usize,
    /// Total bases.
    pub total_bases: u64,
    /// Mean read length.
    pub mean_len: f64,
    /// Minimum and maximum read lengths.
    pub min_len: usize,
    /// Maximum read length.
    pub max_len: usize,
    /// Pooled GC content.
    pub gc_content: f64,
    /// Pooled `N` rate.
    pub n_rate: f64,
}

/// Summarizes a read set.
#[must_use]
pub fn read_set_stats(reads: &[DnaSequence]) -> ReadSetStats {
    let mut total = 0u64;
    let (mut min_len, mut max_len) = (usize::MAX, 0usize);
    let (mut gc, mut acgt, mut n) = (0u64, 0u64, 0u64);
    for read in reads {
        total += read.len() as u64;
        min_len = min_len.min(read.len());
        max_len = max_len.max(read.len());
        let s = sequence_stats(read);
        let read_acgt = (read.len() as f64 * (1.0 - s.n_rate)).round() as u64;
        gc += (s.gc_content * read_acgt as f64).round() as u64;
        acgt += read_acgt;
        n += (s.n_rate * read.len() as f64).round() as u64;
    }
    ReadSetStats {
        reads: reads.len(),
        total_bases: total,
        mean_len: if reads.is_empty() {
            0.0
        } else {
            total as f64 / reads.len() as f64
        },
        min_len: if reads.is_empty() { 0 } else { min_len },
        max_len,
        gc_content: if acgt == 0 {
            0.0
        } else {
            gc as f64 / acgt as f64
        },
        n_rate: if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_and_n_rates() {
        let seq: DnaSequence = "GGCCNNAATT".parse().unwrap();
        let s = sequence_stats(&seq);
        assert_eq!(s.len, 10);
        assert!((s.gc_content - 0.5).abs() < 1e-12);
        assert!((s.n_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence_is_zeroes() {
        let s = sequence_stats(&DnaSequence::new());
        assert_eq!(s.len, 0);
        assert_eq!(s.gc_content, 0.0);
        assert_eq!(s.n_rate, 0.0);
    }

    #[test]
    fn read_set_summary() {
        let reads: Vec<DnaSequence> = vec![
            "ACGT".parse().unwrap(),
            "GGGGGG".parse().unwrap(),
            "AT".parse().unwrap(),
        ];
        let s = read_set_stats(&reads);
        assert_eq!(s.reads, 3);
        assert_eq!(s.total_bases, 12);
        assert_eq!(s.min_len, 2);
        assert_eq!(s.max_len, 6);
        assert!((s.mean_len - 4.0).abs() < 1e-12);
        // GC: 2 (ACGT) + 6 (G×6) + 0 = 8 of 12.
        assert!((s.gc_content - 8.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn random_genomes_are_near_half_gc() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = crate::synth::random_genome(20_000, &mut rng);
        let s = sequence_stats(&g);
        assert!((s.gc_content - 0.5).abs() < 0.02, "{}", s.gc_content);
    }
}
