//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the real `proptest`
//! cannot be vendored. This crate implements the subset of the proptest 1.x
//! API this workspace's property tests use — the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`, integer-range and regex-literal
//! strategies, `collection::{vec, btree_set}`, `sample::select`, tuples,
//! [`any`], and the `prop_assert*` macros — as a deterministic, shrink-free
//! harness: each test body runs `cases` times against seeded pseudo-random
//! inputs (seed derived from the test's name, so failures reproduce
//! run-to-run), and a failing case panics with the standard assertion
//! message instead of shrinking.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator handed to strategies. A thin wrapper so strategy
/// implementations do not depend on the `rand` facade directly.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator for a named test.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(StdRng::seed_from_u64(h))
    }

    fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type of [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy marker for [`Arbitrary`] types.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.0.gen_range(0..2u8) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The full-domain strategy for `T` (`any::<bool>()`, …).
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// String strategies from regex-like literals.
///
/// Only the pattern shapes used in this workspace are supported: a single
/// character class `[...]` (with `a-z` ranges) or the printable-character
/// escape `\PC`, followed by a `{min,max}` repetition. Anything else
/// panics with a clear message rather than silently generating the wrong
/// distribution.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_simple_regex(self);
        let len = rng.0.gen_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect()
    }
}

fn parse_simple_regex(pattern: &str) -> (Vec<char>, usize, usize) {
    let unsupported = || -> ! {
        panic!(
            "the proptest stand-in only supports `[class]{{m,n}}` and \
             `\\PC{{m,n}}` string patterns, got {pattern:?}"
        )
    };
    let (alphabet, rest) = if let Some(rest) = pattern.strip_prefix("\\PC") {
        // Printable, newline-free characters (ASCII subset of \PC).
        ((0x20u8..0x7f).map(char::from).collect(), rest)
    } else if let Some(body) = pattern.strip_prefix('[') {
        let Some(end) = body.find(']') else {
            unsupported()
        };
        let mut alphabet = Vec::new();
        let class: Vec<char> = body[..end].chars().collect();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                for c in class[i]..=class[i + 2] {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        (alphabet, &body[end + 1..])
    } else {
        unsupported()
    };
    let (min, max) = if rest.is_empty() {
        (1, 1)
    } else {
        let Some(spec) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
            unsupported()
        };
        let Some((lo, hi)) = spec.split_once(',') else {
            unsupported()
        };
        match (lo.trim().parse(), hi.trim().parse()) {
            (Ok(lo), Ok(hi)) => (lo, hi),
            _ => unsupported(),
        }
    };
    assert!(
        !alphabet.is_empty() && min <= max,
        "degenerate pattern {pattern:?}"
    );
    (alphabet, min, max)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Collection size specification: a fixed size or a half-open range,
    /// mirroring the real crate's `Into<SizeRange>` conversions.
    #[derive(Debug, Clone)]
    pub struct SizeRange(std::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self(n..n + 1)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self(r)
        }
    }

    /// Strategy for `Vec<T>` with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        let len = len.into().0;
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.0.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A `BTreeSet` of `size` distinct elements drawn from `element`.
    /// The element domain must be comfortably larger than the requested
    /// size (true for every use in this workspace); generation gives up
    /// with a panic if it cannot reach the size after many attempts.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let size = size.into().0;
        assert!(!size.is_empty(), "empty size range");
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.0.gen_range(self.size.clone());
            let mut set = std::collections::BTreeSet::new();
            let budget = target * 20 + 100;
            for _ in 0..budget {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            assert!(
                set.len() >= target,
                "element domain too small for a {target}-element set"
            );
            set
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty list");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }
}

/// The `prop::` alias module the real crate exposes through its prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body against `cases` seeded random
/// inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($bind:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            // Strategies are built once; tuples of strategies are
            // themselves strategies, so each case draws one tuple and
            // destructures it into the declared bindings.
            let strategies = ($($strat,)+);
            for _case in 0..config.cases {
                let ($($bind,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                $body
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}
