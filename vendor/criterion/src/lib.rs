//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the real `criterion`
//! cannot be vendored. This crate implements the API subset the
//! workspace's benches use — [`Criterion::benchmark_group`], group
//! `throughput`/`sample_size`/`bench_function`/`bench_with_input`,
//! [`Bencher::iter`], [`Throughput`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — as a plain wall-clock
//! harness: a short warm-up, then `sample_size` timed samples, reporting
//! mean / min / max and element throughput. No statistical analysis, no
//! HTML reports, no baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration work driver handed to bench closures.
pub struct Bencher {
    /// Duration of the sample measured by the last [`Bencher::iter`] call.
    elapsed: Duration,
    /// Iterations per sample, tuned during warm-up.
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it enough times to produce a stable sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let function_name = function_name.into();
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored: the
    /// stand-in has no tunables, but `cargo bench -- <filter>` style
    /// invocations must not fail).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let group_name = name.to_string();
        run_benchmark(&group_name, "", None, 10, f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples to take (min 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId2>,
        f: F,
    ) -> &mut Self {
        let id = id.into().0;
        run_benchmark(&self.name, &id, self.throughput, self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&self.name, &id.id, self.throughput, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}
}

/// Conversion shim so `bench_function` accepts both `&str` and
/// [`BenchmarkId`], as the real crate does.
pub struct BenchmarkId2(String);

impl From<&str> for BenchmarkId2 {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<BenchmarkId> for BenchmarkId2 {
    fn from(id: BenchmarkId) -> Self {
        Self(id.id)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    let label = if id.is_empty() {
        group.to_string()
    } else {
        format!("{group}/{id}")
    };
    // Warm-up: find an iteration count whose sample takes ≥ ~20 ms, so
    // short routines are not dominated by timer resolution.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    loop {
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(20) || bencher.iters >= 1 << 20 {
            break;
        }
        bencher.iters *= 4;
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  thrpt: {:>12} elem/s", format_si(n as f64 / mean))
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  thrpt: {:>12} B/s", format_si(n as f64 / mean))
        }
        _ => String::new(),
    };
    println!(
        "{label:<40} time: [{} {} {}]{rate}",
        format_time(min),
        format_time(mean),
        format_time(max),
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn format_si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Declares a benchmark group runner, mirroring the real macro's shape.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        g.sample_size(5);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("inputs");
        g.sample_size(5);
        let data = vec![1u64, 2, 3];
        g.bench_with_input(BenchmarkId::from_parameter("vec3"), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>());
        });
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
