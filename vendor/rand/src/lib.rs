//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so the real `rand` cannot
//! be vendored. This crate implements the (small, fully deterministic)
//! subset of the rand 0.8 API the workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen_bool`] — on top of the public-domain xoshiro256++ generator
//! seeded through SplitMix64.
//!
//! The stream differs from upstream `StdRng` (which is ChaCha-based), so
//! seeded datasets are *self*-consistent, not byte-identical to ones
//! generated with the real crate. Every consumer in this workspace only
//! relies on seeds being deterministic, not on a particular stream.

#![forbid(unsafe_code)]

/// Random number generators.
pub mod rngs {
    /// The standard seedable generator: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64 exactly as its reference implementation
    /// recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable generators (rand-core subset).
pub trait SeedableRng: Sized {
    /// The seed type (32 bytes for [`rngs::StdRng`], as upstream).
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state.
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types that can be uniformly sampled from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_closed(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self;
}

/// Uniform `u64` in `[0, bound)` by widening multiply (Lemire's method,
/// without the rejection step — bias is < 2^-32 for every bound this
/// workspace uses, and determinism is what matters here).
fn uniform_u64_below(rng: &mut rngs::StdRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (low as i128 + off as i128) as $t
            }
            fn sample_closed(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full u64/i64 domain: a raw draw is already uniform.
                    return (low as i128 + rng.next_u64() as i128) as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
    fn sample_closed(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
        // The closed/half-open distinction is immaterial at f64 resolution.
        Self::sample_half_open(rng, low, high)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// The user-facing generator trait (rand 0.8 subset).
pub trait Rng {
    /// Uniform sample from `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=4usize);
            assert!(w <= 4);
            let f = rng.gen_range(-4.0..4.0);
            assert!((-4.0..4.0).contains(&f));
            let b = rng.gen_range(0..4u8);
            assert!(b < 4);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn from_seed_accepts_all_zero() {
        let mut rng = StdRng::from_seed([0; 32]);
        // Must not be stuck at zero.
        assert_ne!(rng.next_u64() | rng.next_u64(), 0);
    }

    #[test]
    fn i64_full_domain_closed_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = v; // any value is in range; just must not panic
    }
}
