#!/usr/bin/env bash
# Trace report: captures one traced streaming run via
# `bench_classify --trace` and summarizes both exported artifacts —
# event counts per name on the model timeline, the heaviest folded
# stacks (what a flamegraph would show widest), and the drop counters
# (non-zero drops mean the ring capacity displaced events; raise it via
# Tracer::set_event_capacity before trusting aggregate weights).
#
#   ./scripts/trace_report.sh            # fresh scaled-down traced run
#   ./scripts/trace_report.sh --cached   # re-summarize target/trace_report.*
#
# Artifacts: target/trace_report.chrome.json (load into
# https://ui.perfetto.dev or chrome://tracing) and
# target/trace_report.folded (pipe through flamegraph.pl / inferno).
set -euo pipefail

cd "$(dirname "$0")/.."

TRACE_STEM=target/trace_report
TRACE_READS="${TRACE_READS:-2000}"

if [[ "${1:-}" != "--cached" ]]; then
    echo "== trace_report: tracing a ${TRACE_READS}-read streaming run =="
    cargo run -q --release -p sieve-bench --bin bench_classify -- \
        --reads "$TRACE_READS" --reps 1 --trace "$TRACE_STEM" \
        --out target/trace_report_bench.json --json
    echo
fi

CHROME="$TRACE_STEM.chrome.json"
FOLDED="$TRACE_STEM.folded"
if [[ ! -f "$FOLDED" ]]; then
    echo "error: $FOLDED not found (run without --cached first)" >&2
    exit 1
fi

echo "== model-timeline event counts (by name) =="
# Chrome events are one-per-line compact JSON; model lanes carry "pid":1.
awk -F'"name":"' '/"pid":1/ && /"ph":"[Xi]"/ {
    split($2, a, "\""); n[a[1]]++
} END { for (k in n) printf "  %-24s %d\n", k, n[k] }' "$CHROME" | sort

echo
echo "== heaviest folded stacks (top 12 by weight) =="
# Folded lines are "path;to;frame weight" — weight is the last field.
sort -k2 -n -r "$FOLDED" | head -n 12 | awk '{ printf "  %-56s %s\n", $1, $2 }'

echo
echo "== per-worker sort-span balance (wall lane) =="
# Fused-path bucket sorts run inside per-task "task.sort" wall spans, one
# tid per worker thread (pid 2 = wall clock). A max/min busy ratio near
# 1.0 means the steal queue kept the workers level; a high ratio flags a
# bucket-ownership imbalance the stealer could not drain.
awk -F'"tid":' '/"pid":2/ && /"name":"task.sort"/ && /"ph":"X"/ {
    split($2, t, ","); tid = t[1]
    split($0, d, /"dur":/); split(d[2], v, "[,}]")
    if (!(tid in busy)) nw++
    busy[tid] += v[1]; n[tid]++
} END {
    if (nw == 0) { print "  (no task.sort spans: single-thread or unfused run)"; exit }
    minb = -1; maxb = 0
    for (w in busy) {
        printf "  worker %-3s %12.1f us busy  (%d spans)\n", w, busy[w], n[w]
        if (busy[w] > maxb) maxb = busy[w]
        if (minb < 0 || busy[w] < minb) minb = busy[w]
    }
    if (minb > 0) printf "  max/min busy ratio: %.2f over %d workers\n", maxb / minb, nw
}' "$CHROME"

echo
echo "== timeline mass by domain =="
# %.0f, not %d: picosecond masses exceed 32-bit printf on mawk.
awk '{ split($1, p, ";"); mass[p[1]] += $NF }
     END { for (d in mass) printf "  %-6s %.0f (%s)\n", d, mass[d],
           d == "model" ? "simulated ps" : "host ns" }' "$FOLDED" | sort

echo
echo "== trace_report: OK ($CHROME, $FOLDED) =="
