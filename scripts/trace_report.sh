#!/usr/bin/env bash
# Trace report: captures one traced streaming run via
# `bench_classify --trace` and summarizes both exported artifacts —
# event counts per name on the model timeline, the heaviest folded
# stacks (what a flamegraph would show widest), and the drop counters
# (non-zero drops mean the ring capacity displaced events; raise it via
# Tracer::set_event_capacity before trusting aggregate weights).
#
#   ./scripts/trace_report.sh            # fresh scaled-down traced run
#   ./scripts/trace_report.sh --cached   # re-summarize target/trace_report.*
#
# Artifacts: target/trace_report.chrome.json (load into
# https://ui.perfetto.dev or chrome://tracing) and
# target/trace_report.folded (pipe through flamegraph.pl / inferno).
set -euo pipefail

cd "$(dirname "$0")/.."

TRACE_STEM=target/trace_report
TRACE_READS="${TRACE_READS:-2000}"

if [[ "${1:-}" != "--cached" ]]; then
    echo "== trace_report: tracing a ${TRACE_READS}-read streaming run =="
    cargo run -q --release -p sieve-bench --bin bench_classify -- \
        --reads "$TRACE_READS" --reps 1 --trace "$TRACE_STEM" \
        --out target/trace_report_bench.json --json
    echo
fi

CHROME="$TRACE_STEM.chrome.json"
FOLDED="$TRACE_STEM.folded"
if [[ ! -f "$FOLDED" ]]; then
    echo "error: $FOLDED not found (run without --cached first)" >&2
    exit 1
fi

echo "== model-timeline event counts (by name) =="
# Chrome events are one-per-line compact JSON; model lanes carry "pid":1.
awk -F'"name":"' '/"pid":1/ && /"ph":"[Xi]"/ {
    split($2, a, "\""); n[a[1]]++
} END { for (k in n) printf "  %-24s %d\n", k, n[k] }' "$CHROME" | sort

echo
echo "== heaviest folded stacks (top 12 by weight) =="
# Folded lines are "path;to;frame weight" — weight is the last field.
sort -k2 -n -r "$FOLDED" | head -n 12 | awk '{ printf "  %-56s %s\n", $1, $2 }'

echo
echo "== planner sort-phase attribution (wall lane) =="
# The radix pipeline brackets each phase in its own wall span (pid 2 =
# wall clock): "sort.hist" (global top-window histogram), "sort.scatter"
# (the one full-array MSD counting scatter, write-combining staged),
# "sort.flush" (partial staging-buffer drains inside the scatter),
# "sort.local" (every bucket-local LSD/cutover segment sort), and
# "sort.narrow" (the whole-batch 12 B → 8 B repack and 8 B → 12 B widen
# scans when the global key window fits 32 bits). Their sum against the
# enclosing "shard.sort" total shows where planning time goes;
# sort.flush nests inside sort.scatter, so it is attribution detail,
# not additional mass. Comparison-policy runs (SIEVE_SORT=comparison)
# have shard.sort spans but no sort.* phases; sort.narrow only appears
# when the batch globally narrows (SIEVE_SORT_NARROW not disabled and
# keys span ≤ 32 bits).
awk -F'"name":"' '/"pid":2/ && /"ph":"X"/ {
    split($2, a, "\""); name = a[1]
    if (name !~ /^(shard\.sort|sort\.(hist|scatter|local|flush|narrow))$/) next
    split($0, d, /"dur":/); split(d[2], v, "[,}]")
    busy[name] += v[1]; n[name]++
} END {
    if (!("shard.sort" in busy)) { print "  (no shard.sort spans in this trace)"; exit }
    total = busy["shard.sort"]
    order = "sort.narrow sort.hist sort.scatter sort.flush sort.local"
    split(order, names, " ")
    printf "  %-14s %12.1f us  (%d spans)\n", "shard.sort", total, n["shard.sort"]
    for (i = 1; i <= 5; i++) {
        name = names[i]
        if (!(name in busy)) continue
        printf "  %-14s %12.1f us  (%d spans, %.1f%% of shard.sort%s)\n", \
            name, busy[name], n[name], 100 * busy[name] / total, \
            name == "sort.flush" ? ", nested in scatter" : ""
    }
}' "$CHROME"

echo
echo "== timeline mass by domain =="
# %.0f, not %d: picosecond masses exceed 32-bit printf on mawk.
awk '{ split($1, p, ";"); mass[p[1]] += $NF }
     END { for (d in mass) printf "  %-6s %.0f (%s)\n", d, mass[d],
           d == "model" ? "simulated ps" : "host ns" }' "$FOLDED" | sort

echo
echo "== trace_report: OK ($CHROME, $FOLDED) =="
