#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lint-clean core crates.
# Run from the repository root: ./scripts/tier1.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier1: cargo fmt --check =="
cargo fmt --check

echo "== tier1: cargo build --release =="
cargo build --release

echo "== tier1: cargo test --workspace -q =="
cargo test --workspace -q

echo "== tier1: doc-tests =="
cargo test --workspace --doc -q

echo "== tier1: observability + hardening test files =="
cargo test -q \
    --test obs_determinism \
    --test fault_model \
    --test report_golden \
    --test cluster_edge \
    --test parallel_determinism \
    --test prof_traffic \
    --test prof_determinism

echo "== tier1: kernel differential suite under overflow checks =="
# The scalar/SWAR twins (DESIGN.md §9) lean on wrapping-free bit algebra
# (LCP-from-XOR, mask erosion, rolling shifts); overflow checks turn any
# silent wrap in that algebra into a test failure. A separate target dir
# keeps the special RUSTFLAGS from invalidating the main cache.
RUSTFLAGS="-C overflow-checks=on" CARGO_TARGET_DIR=target/overflow \
    cargo test -q --test kernel_equivalence

echo "== tier1: bench smoke (throughput floors) =="
./scripts/bench_smoke.sh

echo "== tier1: roofline report golden =="
# The report is a pure rendering of the committed artifact, so its
# output must match the committed golden byte-for-byte; regenerate both
# together (see the header of scripts/roofline_report.sh).
diff <(./scripts/roofline_report.sh) results/ROOFLINE.txt \
    || { echo "tier1: roofline_report.sh no longer matches results/ROOFLINE.txt — regenerate the golden with the artifact" >&2; exit 1; }

echo "== tier1: shellcheck scripts/*.sh =="
if command -v shellcheck >/dev/null 2>&1; then
    shellcheck scripts/*.sh
else
    echo "tier1: SKIP shellcheck — not installed in this container (install shellcheck to lint scripts/*.sh)"
fi

echo "== tier1: cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier1: audit #[ignore]d tests =="
# Every #[ignore] must carry a linked justification (an issue reference or
# URL) within a line of the attribute; unexplained quarantines rot.
bad=0
while IFS=: read -r file line _; do
    start=$(( line > 2 ? line - 2 : 1 ))
    context=$(sed -n "${start},$(( line + 1 ))p" "$file")
    if ! printf '%s' "$context" | grep -qiE 'issue|https?://'; then
        echo "tier1: unlinked #[ignore] at ${file}:${line} — add an '// issue: …' comment" >&2
        bad=1
    fi
done < <(grep -rn '#\[ignore' --include='*.rs' crates src tests 2>/dev/null || true)
if [ "$bad" -ne 0 ]; then
    exit 1
fi

echo "== tier1: OK =="
