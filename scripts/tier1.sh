#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lint-clean core crates.
# Run from the repository root: ./scripts/tier1.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release =="
cargo build --release

echo "== tier1: cargo test --workspace -q =="
cargo test --workspace -q

echo "== tier1: cargo clippy (-D warnings) =="
cargo clippy -p sieve-core -p sieve-genomics -p sieve-bench --all-targets -- -D warnings

echo "== tier1: OK =="
