#!/usr/bin/env bash
# Roofline report: renders the per-phase roofline rows of a committed
# `bench_classify --json` artifact (default results/BENCH_classify.json;
# pass another path as $1) as a table — bytes moved, wall time, achieved
# GB/s, and the fraction of the machine's calibrated peak (see
# DESIGN.md §10 for the methodology and scripts/bench_check.sh for the
# gate built on the same numbers).
#
# The output is a pure function of the artifact, so tier1.sh diffs it
# against the committed results/ROOFLINE.txt golden: regenerate both
# together (bench_calibrate; bench_classify --json --chunk 1000; then
# ./scripts/roofline_report.sh > results/ROOFLINE.txt).
#
# Run from the repository root: ./scripts/roofline_report.sh
set -euo pipefail

cd "$(dirname "$0")/.."

SRC="${1:-results/BENCH_classify.json}"

if [[ ! -f "$SRC" ]]; then
    echo "roofline_report: error — no bench artifact at $SRC (run: cargo run --release -p sieve-bench --bin bench_classify -- --json)" >&2
    exit 1
fi

schema=$(awk -F'"schema_version": ' '/^  "schema_version": / { split($2, a, "[,}]"); print a[1]; exit }' "$SRC")
if ! awk -v s="${schema:-}" 'BEGIN { exit !(s + 0 >= 2 && s == int(s) && s != "") }'; then
    echo "roofline_report: error — $SRC has no parseable \"schema_version\" >= 2 (got '${schema:-none}'); regenerate it with the current bench_classify --json" >&2
    exit 1
fi

echo "== roofline: $SRC (schema v${schema}) =="
if grep -q '"calibration": null' "$SRC"; then
    echo "calibration: none — phases unclassified (run: cargo run --release -p sieve-bench --bin bench_calibrate)"
else
    awk -F': ' '/^  "calibration": \{/ {
        split($0, c, /"copy_gbps_1t": /);    split(c[2], a, "[,}]")
        split($0, s, /"scatter_gbps_1t": /); split(s[2], b, "[,}]")
        split($0, v, /"schema_version": /);  split(v[2], d, "[,}]")
        s8 = ""
        if ($0 ~ /"scatter8_gbps_1t": /) {
            split($0, e, /"scatter8_gbps_1t": /); split(e[2], f, "[,}]")
            s8 = sprintf(", scatter8 %s GB/s", f[1])
        }
        printf "calibration: copy %s GB/s, scatter %s GB/s%s (single-core peaks, MACHINE.json schema v%s)\n", a[1], b[1], s8, d[1]
        exit
    }' "$SRC"
fi
echo

# One roofline row per line in the artifact; every column below is read
# from the artifact verbatim (this script derives nothing), so the table
# is exactly as reproducible as the JSON it renders.
awk '
function field(key,    a, b) {
    split($0, a, "\"" key "\": ")
    split(a[2], b, "[,}]")
    return b[1]
}
BEGIN {
    fmt = "%-14s %11s %11s %9s %10s %9s %7s %7s %6s  %s\n"
    printf fmt, "phase", "read MB", "written MB", "items", "wall ms", "ns/item", "GB/s", "peak", "frac", "bound"
    printf fmt, "-----", "-------", "----------", "-----", "-------", "-------", "----", "----", "----", "-----"
}
/"phase": / {
    phase = field("phase"); gsub(/"/, "", phase)
    bound = field("bound"); gsub(/"/, "", bound)
    printf fmt, phase,
        sprintf("%.2f", field("bytes_read") / 1e6),
        sprintf("%.2f", field("bytes_written") / 1e6),
        field("items"),
        sprintf("%.2f", field("wall_ns") / 1e6),
        field("ns_per_item"),
        field("gbps"),
        field("peak_gbps"),
        field("frac_of_peak"),
        bound
}
' "$SRC"
