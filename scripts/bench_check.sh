#!/usr/bin/env bash
# Bench regression gate: runs a fresh `bench_classify --json` (scaled-down
# by default; override with CHECK_READS / CHECK_REPS) into a scratch file
# and diffs it against the committed results/BENCH_classify.json:
#
#   * 1-thread throughput — the fresh reads/sec must not fall more than
#     CHECK_MAX_LOSS_PCT (default 10%) below the committed baseline.
#     Relative to the committed number, so the gate tracks the repo's own
#     history instead of an absolute floor; re-baseline by regenerating
#     results/BENCH_classify.json on the reference host.
#   * obs overhead — each fresh row's obs_overhead_pct must stay within
#     CHECK_MAX_OBS_PCT (default 3%): the recorder's contract is that the
#     disabled-path cost is one relaxed atomic load, and the enabled path
#     stays in single-digit territory. Rows the bench marked
#     "oversubscribed": true (more threads than the container detects;
#     same policy as bench_smoke.sh's speedup floors) are SKIPPED with a
#     message: paired on/off runs of an oversubscribed pipeline measure
#     scheduler noise, not recorder cost.
#   * planner sort wall time — the fresh 1-thread snapshot's
#     wall.shard.sort.ns, normalized per read, must not rise more than
#     CHECK_MAX_SORT_PCT (default 15%) above the committed baseline's.
#     This is the gate on the radix sort pipeline specifically, so a
#     planning regression cannot hide inside the whole-pipeline margin.
#     Keyed on the single-thread snapshot, which by construction is
#     never oversubscribed; baselines predating the span are skipped.
#   * local sort wall time — the same per-read gate on wall.sort.local.ns
#     alone (CHECK_MAX_LOCAL_PCT, default 15%): the bucket-local passes
#     are where the pair-narrowing traffic diet lands, and a whole-sort
#     gate could hide a local-pass regression behind a histogram or
#     scatter win. Baselines predating the narrowed pipeline are
#     skipped. Unlike the whole-sort number, per-read local cost is
#     workload-size-sensitive (batch size sets segment sizes, which set
#     the narrowing plan), so CHECK_READS defaults to the baseline's
#     own read count and this gate is skipped with a message when an
#     explicit CHECK_READS differs from the baseline's.
#   * scatter roofline efficiency — the fresh run's sort.scatter phase
#     must achieve at least CHECK_MIN_SCATTER_FRAC (default 0.4) of the
#     machine's calibrated scatter peak (results/MACHINE.json, written
#     by bench_calibrate). Unlike the throughput gates this one is a
#     same-host ratio, so it is valid on any machine; it catches the
#     failure mode the absolute gates cannot see — a scatter that still
#     "passes" timing on fast hardware while having quietly become
#     compute-bound (extra instructions per pair, dead cache lines).
#     SKIPPED loudly when no calibration file exists.
#
# The committed baseline was measured on a specific host; on a different
# machine the throughput comparison is apples-to-oranges, so set
# CHECK_BASELINE_HOST=1 only where the baseline was produced, or accept
# that the 10% margin must absorb the hardware delta. The obs-overhead
# check is a ratio of two runs on the *same* host and is always valid.
#
# Run from the repository root: ./scripts/bench_check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE=results/BENCH_classify.json
CHECK_OUT=target/bench_check.json
CHECK_REPS="${CHECK_REPS:-9}"
CHECK_MAX_LOSS_PCT="${CHECK_MAX_LOSS_PCT:-10}"
CHECK_MAX_OBS_PCT="${CHECK_MAX_OBS_PCT:-3}"
CHECK_MAX_SORT_PCT="${CHECK_MAX_SORT_PCT:-15}"
CHECK_MAX_LOCAL_PCT="${CHECK_MAX_LOCAL_PCT:-15}"
CHECK_MIN_SCATTER_FRAC="${CHECK_MIN_SCATTER_FRAC:-0.4}"
MACHINE=results/MACHINE.json

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_check: error — no committed baseline at $BASELINE" >&2
    exit 1
fi

# The committed baseline must carry a parseable schema version: gating
# against an artifact whose shape this script cannot vouch for silently
# extracts empty fields and passes vacuously. Fail loudly instead.
require_schema() {
    local v
    v=$(awk -F'"schema_version": ' '/^  "schema_version": / { split($2, a, "[,}]"); print a[1]; exit }' "$1")
    if ! awk -v s="${v:-}" 'BEGIN { exit !(s + 0 >= 2 && s == int(s) && s != "") }'; then
        echo "bench_check: error — $1 has no parseable \"schema_version\" >= 2 (got '${v:-none}'); regenerate it with the current bench_classify --json" >&2
        exit 1
    fi
}
require_schema "$BASELINE"

# Per-read gates compare like-for-like only when the fresh workload
# matches the baseline's, so CHECK_READS defaults to the baseline's own
# read count (2000 if a pre-schema baseline lacks the field).
reads_of() {
    awk -F'"reads": ' '/"reads": / { split($2, a, "[,}]"); print a[1]; exit }' "$1"
}
CHECK_READS="${CHECK_READS:-$(reads_of "$BASELINE")}"
CHECK_READS="${CHECK_READS:-2000}"

echo "== bench_check: ${CHECK_READS} reads x ${CHECK_REPS} reps vs $BASELINE =="
cargo run -q --release -p sieve-bench --bin bench_classify -- \
    --reads "$CHECK_READS" --reps "$CHECK_REPS" --json --out "$CHECK_OUT"

# The hand-rolled JSON is line-per-row, so awk is enough to pull fields.
# Anchor on the 1-thread *batch* row (chunk 0) and stop at the first
# match: the committed baseline may carry rows a scaled-down fresh run
# does not produce (e.g. streamed `--chunk` rows), and extra baseline
# rows must never fail the gate or corrupt the extracted number. An old
# baseline without the `chunk` field still matches via the fallback.
field_1t() {
    awk -F"\"$2\": " '/"threads": 1, "chunk": 0,/ { split($2, a, "[,}]"); print a[1]; exit }' "$1"
}
field_1t_compat() {
    local v
    v=$(field_1t "$1" "$2")
    if [[ -z "$v" ]]; then
        v=$(awk -F"\"$2\": " '/"threads": 1,/ { split($2, a, "[,}]"); print a[1]; exit }' "$1")
    fi
    echo "$v"
}
# Top-level host-kernels tag ("swar"/"scalar"); baselines that predate
# the field report n/a and still gate normally (they measured the old
# scalar-only pipeline, which the throughput margin absorbs).
host_kernels() {
    awk -F'"' '/"host_kernels":/ { print $4; exit }' "$1"
}
base_kernels=$(host_kernels "$BASELINE")
fresh_kernels=$(host_kernels "$CHECK_OUT")
echo "   host kernels: baseline=${base_kernels:-n/a} fresh=${fresh_kernels:-n/a}"

base_rps=$(field_1t_compat "$BASELINE" reads_per_sec)
fresh_rps=$(field_1t_compat "$CHECK_OUT" reads_per_sec)

# The committed baseline uses the full default workload while CHECK_READS
# trims the fresh run; reads/sec is stable across sizes >= 2000 for this
# pipeline (per-read work dominates fixed per-run costs), so comparing
# the two directly stays meaningful and the margin absorbs the residual.
loss_pct=$(awk -v b="$base_rps" -v f="$fresh_rps" \
    'BEGIN { printf "%.1f", (1 - f / b) * 100 }')
echo "   1-thread: baseline=${base_rps} fresh=${fresh_rps} reads/sec (loss ${loss_pct}%)"

fail=0
if ! awk -v l="$loss_pct" -v max="$CHECK_MAX_LOSS_PCT" 'BEGIN { exit !(l <= max) }'; then
    echo "bench_check: FAIL — 1-thread throughput dropped ${loss_pct}% (> ${CHECK_MAX_LOSS_PCT}% allowed) vs committed baseline" >&2
    fail=1
fi

# Planner sort gate: wall.shard.sort.ns from the 1-thread "metrics"
# snapshot (the first occurrence in the file; "metrics_mt" comes later),
# normalized per read because CHECK_READS trims the fresh workload.
sort_ns() {
    awk -F'"sum": ' '/"wall.shard.sort.ns"/ { split($2, a, "[,}]"); print a[1]; exit }' "$1"
}
base_sort=$(sort_ns "$BASELINE")
fresh_sort=$(sort_ns "$CHECK_OUT")
if [[ -z "$base_sort" ]]; then
    echo "   shard sort: SKIP (committed baseline predates the wall.shard.sort.ns span)"
else
    base_reads=$(reads_of "$BASELINE")
    fresh_reads=$(reads_of "$CHECK_OUT")
    sort_pct=$(awk -v bs="$base_sort" -v br="$base_reads" -v fs="$fresh_sort" -v fr="$fresh_reads" \
        'BEGIN { printf "%.1f", ((fs / fr) / (bs / br) - 1) * 100 }')
    echo "   shard sort: baseline=$(awk -v s="$base_sort" -v r="$base_reads" 'BEGIN{printf "%.0f", s/r}') fresh=$(awk -v s="$fresh_sort" -v r="$fresh_reads" 'BEGIN{printf "%.0f", s/r}') ns/read (delta ${sort_pct}%)"
    if ! awk -v p="$sort_pct" -v max="$CHECK_MAX_SORT_PCT" 'BEGIN { exit !(p <= max) }'; then
        echo "bench_check: FAIL — wall.shard.sort.ns rose ${sort_pct}% per read (> ${CHECK_MAX_SORT_PCT}% allowed) vs committed baseline" >&2
        fail=1
    fi
fi

# Local-pass gate: same construction as the shard-sort gate, keyed on
# wall.sort.local.ns so the narrowed bucket passes cannot regress while
# hiding inside the whole-sort number.
local_ns() {
    awk -F'"sum": ' '/"wall.sort.local.ns"/ { split($2, a, "[,}]"); print a[1]; exit }' "$1"
}
base_local=$(local_ns "$BASELINE")
fresh_local=$(local_ns "$CHECK_OUT")
base_reads=$(reads_of "$BASELINE")
fresh_reads=$(reads_of "$CHECK_OUT")
if [[ -z "$base_local" || -z "$fresh_local" ]]; then
    echo "   local sort: SKIP (baseline or fresh run predates the wall.sort.local.ns span)"
elif [[ "$base_reads" != "$fresh_reads" ]]; then
    echo "   local sort: SKIP (fresh ${fresh_reads} reads vs baseline ${base_reads}: per-read local cost is size-sensitive — batch size sets segment sizes and the narrowing plan; rerun with CHECK_READS=${base_reads} to gate)"
else
    local_pct=$(awk -v bs="$base_local" -v br="$base_reads" -v fs="$fresh_local" -v fr="$fresh_reads" \
        'BEGIN { printf "%.1f", ((fs / fr) / (bs / br) - 1) * 100 }')
    echo "   local sort: baseline=$(awk -v s="$base_local" -v r="$base_reads" 'BEGIN{printf "%.0f", s/r}') fresh=$(awk -v s="$fresh_local" -v r="$fresh_reads" 'BEGIN{printf "%.0f", s/r}') ns/read (delta ${local_pct}%)"
    if ! awk -v p="$local_pct" -v max="$CHECK_MAX_LOCAL_PCT" 'BEGIN { exit !(p <= max) }'; then
        echo "bench_check: FAIL — wall.sort.local.ns rose ${local_pct}% per read (> ${CHECK_MAX_LOCAL_PCT}% allowed) vs committed baseline" >&2
        fail=1
    fi
fi

# Each fresh row's obs overhead (the rows are one-per-line, so pull all).
# Rows the bench marked oversubscribed are skipped explicitly — the flag
# comes from the artifact itself, not re-derived here.
while read -r threads over pct; do
    if [ "$over" = "true" ]; then
        echo "   obs overhead: threads=${threads} ${pct}% (SKIP: row marked oversubscribed — more threads than detected cores, timing measures scheduler noise)"
        continue
    fi
    echo "   obs overhead: threads=${threads} ${pct}%"
    if ! awk -v p="$pct" -v max="$CHECK_MAX_OBS_PCT" 'BEGIN { exit !(p <= max) }'; then
        echo "bench_check: FAIL — obs overhead ${pct}% at threads=${threads} (> ${CHECK_MAX_OBS_PCT}% allowed)" >&2
        fail=1
    fi
done < <(awk '/"obs_overhead_pct"/ {
    split($0, t, /"threads": /); split(t[2], a, ",")
    split($0, v, /"oversubscribed": /); o = (length(v) > 1) ? substr(v[2], 1, index(v[2], ",") - 1) : "false"
    split($0, p, /"obs_overhead_pct": /); split(p[2], b, "[,}]")
    print a[1], o, b[1]
}' "$CHECK_OUT")

# Scatter roofline efficiency: frac_of_peak comes straight from the
# fresh artifact's roofline rows, which bench_classify computed against
# this machine's own calibration — a same-host ratio, valid anywhere.
if [[ ! -f "$MACHINE" ]]; then
    echo "   scatter efficiency: SKIP — no calibration at $MACHINE (run: cargo run --release -p sieve-bench --bin bench_calibrate)"
elif grep -q '"calibration": null' "$CHECK_OUT"; then
    echo "   scatter efficiency: SKIP — fresh run found no usable calibration (regenerate $MACHINE with bench_calibrate)"
else
    scatter_frac=$(awk -F'"frac_of_peak": ' '/"phase": "sort.scatter"/ { split($2, a, "[,}]"); print a[1]; exit }' "$CHECK_OUT")
    scatter_bound=$(awk -F'"bound": "' '/"phase": "sort.scatter"/ { split($2, a, "\""); print a[1]; exit }' "$CHECK_OUT")
    if [[ -z "$scatter_frac" ]]; then
        echo "bench_check: FAIL — fresh artifact has no sort.scatter roofline row despite a calibration file" >&2
        fail=1
    else
        echo "   scatter efficiency: ${scatter_frac} of calibrated peak (${scatter_bound}-bound, floor ${CHECK_MIN_SCATTER_FRAC})"
        if ! awk -v f="$scatter_frac" -v floor="$CHECK_MIN_SCATTER_FRAC" 'BEGIN { exit !(f >= floor) }'; then
            echo "bench_check: FAIL — sort.scatter achieved only ${scatter_frac} of the calibrated scatter peak (< ${CHECK_MIN_SCATTER_FRAC}): the scatter kernel has gone compute-bound" >&2
            fail=1
        fi
    fi
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "== bench_check: OK =="
