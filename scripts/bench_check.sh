#!/usr/bin/env bash
# Bench regression gate: runs a fresh `bench_classify --json` (scaled-down
# by default; override with CHECK_READS / CHECK_REPS) into a scratch file
# and diffs it against the committed results/BENCH_classify.json:
#
#   * 1-thread throughput — the fresh reads/sec must not fall more than
#     CHECK_MAX_LOSS_PCT (default 10%) below the committed baseline.
#     Relative to the committed number, so the gate tracks the repo's own
#     history instead of an absolute floor; re-baseline by regenerating
#     results/BENCH_classify.json on the reference host.
#   * obs overhead — each fresh row's obs_overhead_pct must stay within
#     CHECK_MAX_OBS_PCT (default 3%): the recorder's contract is that the
#     disabled-path cost is one relaxed atomic load, and the enabled path
#     stays in single-digit territory. Rows with more threads than the
#     host has cores are SKIPPED (same policy as bench_smoke.sh's
#     speedup floor): paired on/off runs of an oversubscribed pipeline
#     measure scheduler noise, not recorder cost.
#
# The committed baseline was measured on a specific host; on a different
# machine the throughput comparison is apples-to-oranges, so set
# CHECK_BASELINE_HOST=1 only where the baseline was produced, or accept
# that the 10% margin must absorb the hardware delta. The obs-overhead
# check is a ratio of two runs on the *same* host and is always valid.
#
# Run from the repository root: ./scripts/bench_check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE=results/BENCH_classify.json
CHECK_OUT=target/bench_check.json
CHECK_READS="${CHECK_READS:-2000}"
CHECK_REPS="${CHECK_REPS:-9}"
CHECK_MAX_LOSS_PCT="${CHECK_MAX_LOSS_PCT:-10}"
CHECK_MAX_OBS_PCT="${CHECK_MAX_OBS_PCT:-3}"

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_check: error — no committed baseline at $BASELINE" >&2
    exit 1
fi

echo "== bench_check: ${CHECK_READS} reads x ${CHECK_REPS} reps vs $BASELINE =="
cargo run -q --release -p sieve-bench --bin bench_classify -- \
    --reads "$CHECK_READS" --reps "$CHECK_REPS" --json --out "$CHECK_OUT"

# The hand-rolled JSON is line-per-row, so awk is enough to pull fields.
# Anchor on the 1-thread *batch* row (chunk 0) and stop at the first
# match: the committed baseline may carry rows a scaled-down fresh run
# does not produce (e.g. streamed `--chunk` rows), and extra baseline
# rows must never fail the gate or corrupt the extracted number. An old
# baseline without the `chunk` field still matches via the fallback.
field_1t() {
    awk -F"\"$2\": " '/"threads": 1, "chunk": 0,/ { split($2, a, "[,}]"); print a[1]; exit }' "$1"
}
field_1t_compat() {
    local v
    v=$(field_1t "$1" "$2")
    if [[ -z "$v" ]]; then
        v=$(awk -F"\"$2\": " '/"threads": 1,/ { split($2, a, "[,}]"); print a[1]; exit }' "$1")
    fi
    echo "$v"
}
# Top-level host-kernels tag ("swar"/"scalar"); baselines that predate
# the field report n/a and still gate normally (they measured the old
# scalar-only pipeline, which the throughput margin absorbs).
host_kernels() {
    awk -F'"' '/"host_kernels":/ { print $4; exit }' "$1"
}
base_kernels=$(host_kernels "$BASELINE")
fresh_kernels=$(host_kernels "$CHECK_OUT")
echo "   host kernels: baseline=${base_kernels:-n/a} fresh=${fresh_kernels:-n/a}"

base_rps=$(field_1t_compat "$BASELINE" reads_per_sec)
fresh_rps=$(field_1t_compat "$CHECK_OUT" reads_per_sec)

# The committed baseline uses the full default workload while CHECK_READS
# trims the fresh run; reads/sec is stable across sizes >= 2000 for this
# pipeline (per-read work dominates fixed per-run costs), so comparing
# the two directly stays meaningful and the margin absorbs the residual.
loss_pct=$(awk -v b="$base_rps" -v f="$fresh_rps" \
    'BEGIN { printf "%.1f", (1 - f / b) * 100 }')
echo "   1-thread: baseline=${base_rps} fresh=${fresh_rps} reads/sec (loss ${loss_pct}%)"

fail=0
if ! awk -v l="$loss_pct" -v max="$CHECK_MAX_LOSS_PCT" 'BEGIN { exit !(l <= max) }'; then
    echo "bench_check: FAIL — 1-thread throughput dropped ${loss_pct}% (> ${CHECK_MAX_LOSS_PCT}% allowed) vs committed baseline" >&2
    fail=1
fi

# Each fresh row's obs overhead (the rows are one-per-line, so pull all).
# The ":" in the anchor matters: "host_cores_detected" must not match.
cores=$(awk -F'[ ,]' '/"host_cores":/ { print $4 }' "$CHECK_OUT")
while read -r threads pct; do
    if [ "$threads" -gt "${cores:-1}" ]; then
        echo "   obs overhead: threads=${threads} ${pct}% (SKIP: host has ${cores:-?} core(s), oversubscribed rows measure scheduler noise)"
        continue
    fi
    echo "   obs overhead: threads=${threads} ${pct}%"
    if ! awk -v p="$pct" -v max="$CHECK_MAX_OBS_PCT" 'BEGIN { exit !(p <= max) }'; then
        echo "bench_check: FAIL — obs overhead ${pct}% at threads=${threads} (> ${CHECK_MAX_OBS_PCT}% allowed)" >&2
        fail=1
    fi
done < <(awk -F'"' '/"obs_overhead_pct"/ {
    split($0, t, /"threads": /); split(t[2], a, ",")
    split($0, o, /"obs_overhead_pct": /); split(o[2], b, "[,}]")
    print a[1], b[1]
}' "$CHECK_OUT")

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "== bench_check: OK =="
