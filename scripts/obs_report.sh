#!/usr/bin/env bash
# Observability report: runs the instrumented classification benchmark and
# summarizes the recorded pipeline metrics (counters, ETM-depth histogram,
# per-stage wall spans). Run from the repository root:
#
#   ./scripts/obs_report.sh            # full run (release build + bench)
#   ./scripts/obs_report.sh --cached   # re-summarize existing results/
#
# Artifacts: results/BENCH_classify.json (throughput + embedded metrics
# snapshot) and results/BENCH_classify.prom (Prometheus text format).
set -euo pipefail

cd "$(dirname "$0")/.."

PROM=results/BENCH_classify.prom
JSON=results/BENCH_classify.json

if [[ "${1:-}" != "--cached" ]]; then
    echo "== obs_report: running instrumented benchmark =="
    cargo run --release -p sieve-bench --bin bench_classify -- --json --prom
    echo
fi

if [[ ! -f "$PROM" ]]; then
    echo "error: $PROM not found (run without --cached first)" >&2
    exit 1
fi

echo "== pipeline counters =="
# Match sample lines by metric *name* (collected from the TYPE headers),
# not by line position: `getline` after `# TYPE` silently prints the
# wrong value if a HELP line, comment, or blank ever lands between the
# header and its sample.
awk '/^# TYPE .* counter$/ { counter[$3] = 1; next }
     ($1 in counter)       { printf "  %-28s %s\n", $1, $2 }' "$PROM"

echo
echo "== stage histograms (count / sum / mean; zero-count omitted) =="
awk '
/^# TYPE .* histogram$/ { name=$3 }
$1 == name"_sum"   { sum[name]=$2 }
$1 == name"_count" { cnt[name]=$2 }
END {
    for (n in cnt) {
        # A zero-count histogram means the stage never ran in this
        # workload (e.g. wall.host.extract without streaming); printing
        # it as "0 / 0 / 0.0" reads like a measurement, so skip it.
        if (cnt[n] == 0) continue
        printf "  %-36s %10d %14.0f %12.1f\n", n, cnt[n], sum[n], sum[n] / cnt[n]
    }
}' "$PROM" | sort

echo
echo "== ETM rows-activated distribution (the live ESP histogram) =="
grep '^sieve_etm_rows_activated_bucket' "$PROM" \
    | sed 's/sieve_etm_rows_activated_bucket{le="\([^"]*\)"} \(.*\)/  rows <= \1 : \2/'

echo
echo "== metrics overhead (recorder on vs off) =="
grep -o '"threads": [0-9]*, .*"obs_overhead_pct": [0-9.+-]*' "$JSON" \
    | sed 's/[{}"]//g; s/, /  /g' || echo "  (no overhead data in $JSON)"

echo
echo "== obs_report: OK (full snapshot: $JSON, $PROM) =="
