#!/usr/bin/env bash
# Bench smoke gate: a fast `bench_classify --json` run (scaled-down
# workload, separate --out so the committed results/BENCH_classify.json
# is never clobbered) with three regression floors:
#
#   * 1-thread throughput — must stay above SMOKE_FLOOR_1T reads/sec.
#     The floor is half of the slowest committed full-run baseline
#     (80,272 reads/sec before the radix-plan + dedup rework), so it
#     trips on algorithmic regressions, not scheduler noise.
#   * 2-thread streamed speedup — must stay above SMOKE_FLOOR_SPEEDUP_2T
#     on any host with >= 2 cores. This is the floor that catches the
#     planner re-serializing (the pre-parallel-radix regression showed
#     0.85x here); it guards the streamed path because that is where the
#     fused sort-in-task planner does the most work per thread.
#   * 4-thread batch speedup — must stay above SMOKE_FLOOR_SPEEDUP_4T
#     on any host with >= 4 cores.
#
# Wall-clock parallel speedup needs physical cores. bench_classify marks
# each row "oversubscribed": true when its thread count exceeds what the
# container detects (CI containers are often 1-core); those rows' floors
# are SKIPPED with a message, because oversubscribed threads on one core
# cannot speed anything up and the number would only measure scheduler
# noise. The flag comes from the artifact itself, so this script and
# bench_check.sh skip the exact rows the bench classified — host_cores
# still honours SIEVE_HOST_CORES (see bench_classify) for containers
# that under-report parallelism.
#
# Run from the repository root: ./scripts/bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE_READS="${SMOKE_READS:-2000}"
SMOKE_REPS="${SMOKE_REPS:-6}"
SMOKE_CHUNK=$((SMOKE_READS / 4))
SMOKE_OUT=target/bench_smoke.json
SMOKE_FLOOR_1T=40000
SMOKE_FLOOR_SPEEDUP_2T=1.2
SMOKE_FLOOR_SPEEDUP_4T=1.4
BASELINE=results/BENCH_classify.json

# The smoke gate itself only reads its own fresh run, but it is the
# first bench script tier1 executes — so it also vouches for the
# committed baseline every other consumer (bench_check.sh,
# roofline_report.sh) gates against: present, and with a schema version
# this toolchain understands. A missing or unversioned baseline fails
# here, loudly, instead of as an empty-field mystery two scripts later.
if [[ ! -f "$BASELINE" ]]; then
    echo "bench_smoke: error — no committed baseline at $BASELINE (regenerate with bench_classify --json)" >&2
    exit 1
fi
base_schema=$(awk -F'"schema_version": ' '/^  "schema_version": / { split($2, a, "[,}]"); print a[1]; exit }' "$BASELINE")
if ! awk -v s="${base_schema:-}" 'BEGIN { exit !(s + 0 >= 2 && s == int(s) && s != "") }'; then
    echo "bench_smoke: error — $BASELINE has no parseable \"schema_version\" >= 2 (got '${base_schema:-none}'); regenerate it with the current bench_classify --json" >&2
    exit 1
fi

echo "== bench_smoke: ${SMOKE_READS} reads x ${SMOKE_REPS} reps (chunk ${SMOKE_CHUNK}) =="
cargo run -q --release -p sieve-bench --bin bench_classify -- \
    --reads "$SMOKE_READS" --reps "$SMOKE_REPS" --chunk "$SMOKE_CHUNK" \
    --json --out "$SMOKE_OUT"

# The hand-rolled JSON is line-per-row, so awk is enough to pull fields.
# The ":" in the anchor matters: "host_cores_detected" must not match.
cores=$(awk -F'[ ,]' '/"host_cores":/ { print $4 }' "$SMOKE_OUT")
kernels=$(awk -F'"' '/"host_kernels":/ { print $4; exit }' "$SMOKE_OUT")
# Anchor batch floors on the chunk-0 rows and the streamed floor on the
# non-zero chunk rows: both row families carry the same thread counts.
rps_1t=$(awk -F'"reads_per_sec": ' '/"threads": 1, "chunk": 0,/ { split($2, a, ","); print a[1]; exit }' "$SMOKE_OUT")
speedup_2t=$(awk -F'"speedup_vs_1_thread": ' '/"threads": 2, "chunk": [1-9]/ { split($2, a, ","); print a[1]; exit }' "$SMOKE_OUT")
speedup_4t=$(awk -F'"speedup_vs_1_thread": ' '/"threads": 4, "chunk": 0,/ { split($2, a, ","); print a[1]; exit }' "$SMOKE_OUT")
over_2t=$(awk -F'"oversubscribed": ' '/"threads": 2, "chunk": [1-9]/ { split($2, a, ","); print a[1]; exit }' "$SMOKE_OUT")
over_4t=$(awk -F'"oversubscribed": ' '/"threads": 4, "chunk": 0,/ { split($2, a, ","); print a[1]; exit }' "$SMOKE_OUT")

echo "   host_cores=${cores} kernels=${kernels:-n/a} 1t=${rps_1t} reads/sec 2t_streamed_speedup=${speedup_2t:-n/a} 4t_speedup=${speedup_4t:-n/a}"

fail=0
if ! awk -v v="$rps_1t" -v floor="$SMOKE_FLOOR_1T" 'BEGIN { exit !(v >= floor) }'; then
    echo "bench_smoke: FAIL — 1-thread throughput ${rps_1t} reads/sec below floor ${SMOKE_FLOOR_1T}" >&2
    fail=1
fi
if [ "${over_2t:-false}" = "true" ]; then
    echo "bench_smoke: SKIP 2-thread streamed speedup floor (row marked oversubscribed: host detects fewer than 2 cores, so the number would measure scheduler noise)"
elif ! awk -v v="$speedup_2t" -v floor="$SMOKE_FLOOR_SPEEDUP_2T" 'BEGIN { exit !(v >= floor) }'; then
    echo "bench_smoke: FAIL — 2-thread streamed speedup ${speedup_2t}x below floor ${SMOKE_FLOOR_SPEEDUP_2T}x" >&2
    fail=1
fi
if [ "${over_4t:-false}" = "true" ]; then
    echo "bench_smoke: SKIP 4-thread speedup floor (row marked oversubscribed: host detects fewer than 4 cores, so the number would measure scheduler noise)"
elif ! awk -v v="$speedup_4t" -v floor="$SMOKE_FLOOR_SPEEDUP_4T" 'BEGIN { exit !(v >= floor) }'; then
    echo "bench_smoke: FAIL — 4-thread speedup ${speedup_4t}x below floor ${SMOKE_FLOOR_SPEEDUP_4T}x" >&2
    fail=1
fi
if [ "$fail" -ne 0 ]; then
    exit 1
fi

echo "== bench_smoke: OK =="
