#!/usr/bin/env bash
# Bench smoke gate: a fast `bench_classify --json` run (scaled-down
# workload, separate --out so the committed results/BENCH_classify.json
# is never clobbered) with two regression floors:
#
#   * 1-thread throughput — must stay above SMOKE_FLOOR_1T reads/sec.
#     The floor is half of the slowest committed full-run baseline
#     (80,272 reads/sec before the radix-plan + dedup rework), so it
#     trips on algorithmic regressions, not scheduler noise.
#   * 4-thread speedup — must stay above SMOKE_FLOOR_SPEEDUP_4T.
#     Wall-clock parallel speedup needs physical cores; on hosts with
#     fewer than 4 cores (CI containers are often 1-core) the check is
#     SKIPPED with a message, because oversubscribed threads on one core
#     cannot speed anything up and the number would only measure noise.
#
# Run from the repository root: ./scripts/bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE_READS=2000
SMOKE_REPS=6
SMOKE_OUT=target/bench_smoke.json
SMOKE_FLOOR_1T=40000
SMOKE_FLOOR_SPEEDUP_4T=1.4

echo "== bench_smoke: ${SMOKE_READS} reads x ${SMOKE_REPS} reps =="
cargo run -q --release -p sieve-bench --bin bench_classify -- \
    --reads "$SMOKE_READS" --reps "$SMOKE_REPS" --json --out "$SMOKE_OUT"

# The hand-rolled JSON is line-per-row, so awk is enough to pull fields.
cores=$(awk -F'[ ,]' '/"host_cores"/ { print $4 }' "$SMOKE_OUT")
# Anchor on the batch (chunk 0) rows: streamed `--chunk` rows also carry
# threads counts and must not shadow the floors.
rps_1t=$(awk -F'"reads_per_sec": ' '/"threads": 1, "chunk": 0,/ { split($2, a, ","); print a[1]; exit }' "$SMOKE_OUT")
speedup_4t=$(awk -F'"speedup_vs_1_thread": ' '/"threads": 4, "chunk": 0,/ { split($2, a, ","); print a[1]; exit }' "$SMOKE_OUT")

echo "   host_cores=${cores} 1t=${rps_1t} reads/sec 4t_speedup=${speedup_4t:-n/a}"

fail=0
if ! awk -v v="$rps_1t" -v floor="$SMOKE_FLOOR_1T" 'BEGIN { exit !(v >= floor) }'; then
    echo "bench_smoke: FAIL — 1-thread throughput ${rps_1t} reads/sec below floor ${SMOKE_FLOOR_1T}" >&2
    fail=1
fi
if [ "${cores:-1}" -lt 4 ]; then
    echo "bench_smoke: SKIP 4-thread speedup floor (host has ${cores:-?} core(s); wall-clock parallel speedup needs >= 4)"
elif ! awk -v v="$speedup_4t" -v floor="$SMOKE_FLOOR_SPEEDUP_4T" 'BEGIN { exit !(v >= floor) }'; then
    echo "bench_smoke: FAIL — 4-thread speedup ${speedup_4t}x below floor ${SMOKE_FLOOR_SPEEDUP_4T}x" >&2
    fail=1
fi
if [ "$fail" -ne 0 ]; then
    exit 1
fi

echo "== bench_smoke: OK =="
