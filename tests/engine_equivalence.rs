//! Property tests: the fast sorted-LCP engine is exactly equivalent to the
//! bit-accurate latch-level engine, on arbitrary reference sets and
//! queries. This is the load-bearing verification of the whole simulator —
//! every timing number flows from these row counts.

use proptest::prelude::*;
use sieve::core::{bitsim::BitAccurateSubarray, engine, DeviceLayout, SieveConfig};
use sieve::dram::Geometry;
use sieve::genomics::{Kmer, TaxonId};

/// Strategy: a sorted set of distinct k-mers (k = 15 keeps the space dense
/// enough that random hits/near-misses occur) plus query k-mers.
fn kmer_set(k: usize, max_len: usize) -> impl Strategy<Value = Vec<(Kmer, TaxonId)>> {
    let max_bits = 1u64 << (2 * k);
    prop::collection::btree_set(0..max_bits, 1..max_len).prop_map(move |set| {
        set.into_iter()
            .enumerate()
            .map(|(i, bits)| {
                (
                    Kmer::from_u64(bits, k).expect("bits in range"),
                    TaxonId(i as u32),
                )
            })
            .collect()
    })
}

fn tiny_config(k: usize) -> SieveConfig {
    // 1024-column rows keep the bit-accurate engine fast; one pattern group
    // of 576 columns per row (512 refs + 64 query slots).
    SieveConfig::type3(4)
        .with_geometry(Geometry::scaled_small())
        .with_k(k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_engine_equals_bit_accurate(
        entries in kmer_set(15, 400),
        queries in prop::collection::vec(0u64..(1 << 30), 1..50),
        etm in any::<bool>(),
        flush in 0u32..3,
    ) {
        let k = 15;
        let config = tiny_config(k);
        let layout = DeviceLayout::build(entries, &config).expect("fits");
        for sub in 0..layout.occupied_subarrays() {
            let sa = layout.subarray(sub);
            let bits = BitAccurateSubarray::from_view(&sa, config.geometry.cols_per_row);
            for &qbits in &queries {
                let q = Kmer::from_u64(qbits, k).expect("in range");
                let fast = engine::lookup(&sa, q, etm, flush);
                let exact = bits.lookup(q, etm, flush);
                prop_assert_eq!(fast, exact, "query {} etm={} flush={}", q, etm, flush);
            }
        }
    }

    #[test]
    fn stored_kmers_always_hit_with_their_payload(
        entries in kmer_set(15, 300),
    ) {
        let config = tiny_config(15);
        let expected: Vec<(Kmer, TaxonId)> = entries.clone();
        let layout = DeviceLayout::build(entries, &config).expect("fits");
        for (kmer, taxon) in expected {
            // Find the subarray holding it through the sorted partition.
            let mut found = false;
            for sa in layout.subarrays() {
                if sa.first().bits() <= kmer.bits() && kmer.bits() <= sa.last().bits() {
                    let outcome = engine::lookup(&sa, kmer, true, 1);
                    prop_assert_eq!(outcome.hit.map(|(_, t)| t), Some(taxon));
                    prop_assert_eq!(outcome.rows as usize, kmer.bit_len());
                    found = true;
                }
            }
            prop_assert!(found, "k-mer {} not covered by any subarray range", kmer);
        }
    }

    #[test]
    fn max_lcp_in_range_matches_brute_force(
        entries in kmer_set(12, 200),
        qbits in 0u64..(1 << 24),
        start in 0usize..100,
        len in 1usize..100,
    ) {
        let config = tiny_config(12);
        let layout = DeviceLayout::build(entries, &config).expect("fits");
        let sa = layout.subarray(0);
        let start = start % sa.len();
        let end = (start + len).min(sa.len());
        let q = Kmer::from_u64(qbits, 12).expect("in range");
        let fast = engine::max_lcp_in_range(&sa, start..end, q);
        let brute = sa.entries()[start..end]
            .iter()
            .map(|(r, _)| r.lcp_bits(&q))
            .max();
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn type1_batch_etm_matches_bit_accurate_64col_segments(
        entries in kmer_set(15, 500),
        qbits in 0u64..(1 << 30),
    ) {
        // Type-1's skip-bit registers prune at 64-column batch
        // granularity; its scheduler computes per-batch max-LCP with the
        // fast engine. Verify against the latch-level ground truth.
        let config = SieveConfig::type1()
            .with_geometry(Geometry::scaled_small())
            .with_k(15);
        let layout = DeviceLayout::build(entries, &config).expect("fits");
        let sa = layout.subarray(0);
        let bits = BitAccurateSubarray::from_view(&sa, config.geometry.cols_per_row);
        let q = Kmer::from_u64(qbits, 15).expect("in range");
        let deaths = bits.segment_death_rows(q, 64);
        for (b, death) in deaths.iter().enumerate() {
            let range = sa.ranks_in_cols(b as u32 * 64, (b as u32 + 1) * 64);
            let expected = engine::max_lcp_in_range(&sa, range, q);
            prop_assert_eq!(*death, expected, "batch {}", b);
        }
    }

    #[test]
    fn segment_death_rows_match_fast_ranges(
        entries in kmer_set(15, 400),
        qbits in 0u64..(1 << 30),
    ) {
        let config = tiny_config(15);
        let layout = DeviceLayout::build(entries, &config).expect("fits");
        let sa = layout.subarray(0);
        let cols = config.geometry.cols_per_row;
        let bits = BitAccurateSubarray::from_view(&sa, cols);
        let q = Kmer::from_u64(qbits, 15).expect("in range");
        let seg_len = 256u32;
        let deaths = bits.segment_death_rows(q, seg_len as usize);
        for (s, death) in deaths.iter().enumerate() {
            let range = sa.ranks_in_cols(s as u32 * seg_len, (s as u32 + 1) * seg_len);
            let expected = engine::max_lcp_in_range(&sa, range, q)
                .map(|lcp| lcp.min(q.bit_len()));
            prop_assert_eq!(*death, expected, "segment {}", s);
        }
    }
}
