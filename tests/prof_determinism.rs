//! Determinism of the roofline traffic layer (DESIGN.md §10): a
//! [`prof::ProfSnapshot`] is charged analytically from the workload, so
//! for a fixed workload, sort policy, and kernel selection it must be
//! **bit-identical across thread counts** — parallel execution may
//! physically re-scan buffers, but the canonical charge may not move.
//! Unlike the obs grid (tests/obs_determinism.rs), the *policy* axis is
//! allowed to change the numbers (a comparison sort is charged zero sort
//! bytes by design), so references here are held per policy, not
//! collapsed across it.
//!
//! The prof table is process-wide; this file owns it (each integration
//! test file is its own binary) and serializes on a local mutex.

use std::sync::Mutex;

use sieve::core::{obs, prof, HostKernels, HostPipeline, SieveConfig, SieveDevice, SortPolicy};
use sieve::dram::Geometry;
use sieve::genomics::synth;

/// The acceptance sweep: sequential, typical cores, oversubscribed.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Serializes tests in this binary around the global recorder + table.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

struct RecorderSession<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

impl RecorderSession<'_> {
    fn begin() -> Self {
        let guard = RECORDER_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        obs::global().reset();
        obs::global().set_enabled(true);
        prof::reset();
        Self { _guard: guard }
    }
}

impl Drop for RecorderSession<'_> {
    fn drop(&mut self) {
        obs::global().set_enabled(false);
        obs::global().reset();
        prof::reset();
    }
}

fn dataset() -> synth::SyntheticDataset {
    synth::make_dataset_with(8, 2048, 31, 4242)
}

fn device(config: SieveConfig, threads: usize, ds: &synth::SyntheticDataset) -> SieveDevice {
    SieveDevice::new(
        config
            .with_geometry(Geometry::scaled_medium())
            .with_threads(threads),
        ds.entries.clone(),
    )
    .expect("dataset fits the scaled geometry")
}

/// The full acceptance grid: threads × sort policy × narrowing × host
/// kernels over a streamed classification. Within each (policy, narrow)
/// point the traffic table must be bit-identical for every (kernels,
/// threads) cell — the kernel twins extract identical streams, and
/// thread count must never move a byte. (The narrow axis gets its own
/// reference: narrowing legitimately changes the charged element width,
/// and the prof_traffic differential suite pins each side to its
/// predictor.)
#[test]
fn traffic_grid_is_bit_identical_across_threads_and_kernels() {
    let _session = RecorderSession::begin();
    let ds = dataset();
    let (pass, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 25, 31);
    let reads: Vec<_> = pass.iter().cycle().take(pass.len() * 2).cloned().collect();
    let sort_grid = [
        (SortPolicy::Adaptive, false),
        (SortPolicy::Adaptive, true),
        (SortPolicy::Lsd, false),
        (SortPolicy::Lsd, true),
        (SortPolicy::Comparison, true),
    ];
    for (policy, narrow) in sort_grid {
        let mut reference: Option<prof::ProfSnapshot> = None;
        for kernels in [HostKernels::Scalar, HostKernels::Swar] {
            for threads in [1usize, 2, 4] {
                obs::global().reset();
                prof::reset();
                let config = SieveConfig::type3(8)
                    .with_host_kernels(kernels)
                    .with_sort_policy(policy)
                    .with_sort_narrow(narrow);
                HostPipeline::new(device(config, threads, &ds))
                    .classify_stream(&reads, 10)
                    .unwrap();
                let snap = prof::snapshot();
                match &reference {
                    None => reference = Some(snap),
                    Some(base) => assert_eq!(
                        &snap,
                        base,
                        "sort={} narrow={narrow} kernels={} threads={threads}: \
                         traffic snapshot diverged",
                        policy.label(),
                        kernels.label()
                    ),
                }
            }
        }
        let snap = reference.expect("grid ran");
        // Non-vacuity, and the documented policy dependence: every cell
        // extracts and matches; only radix-planned policies charge sort
        // bytes.
        assert!(snap.traffic(prof::Phase::HostExtract).items > 0);
        assert!(snap.traffic(prof::Phase::DeviceMatch).items > 0);
        let scatter = snap.traffic(prof::Phase::SortScatter).bytes();
        match policy {
            SortPolicy::Comparison => assert_eq!(scatter, 0, "comparison sorts are not charged"),
            // Forced LSD must charge its scatter; Adaptive may
            // legitimately take the comparison fallback on chunks this
            // small, so its charge is whatever the cutover picked (the
            // grid equality above already pinned it).
            SortPolicy::Lsd => assert!(scatter > 0, "forced LSD never charged a scatter"),
            SortPolicy::Adaptive => {}
        }
    }
}

/// Raw device batches (no host pipeline) across the full thread sweep,
/// including oversubscription, with and without the simulated PCIe link:
/// the whole traffic table — device phases and transfers included — must
/// not move by a byte.
#[test]
fn device_batches_charge_identically_across_the_sweep() {
    let _session = RecorderSession::begin();
    let ds = dataset();
    let queries: Vec<_> = ds.entries.iter().step_by(3).map(|(k, _)| *k).collect();
    for config in [
        SieveConfig::type3(8),
        SieveConfig::type3(8).with_pcie(sieve::core::PcieConfig::gen4_x16()),
    ] {
        let mut reference: Option<prof::ProfSnapshot> = None;
        for threads in THREAD_SWEEP {
            obs::global().reset();
            prof::reset();
            device(config.clone(), threads, &ds).run(&queries).unwrap();
            let snap = prof::snapshot();
            match &reference {
                None => reference = Some(snap),
                Some(base) => assert_eq!(
                    &snap,
                    base,
                    "{} threads={threads}: traffic snapshot diverged",
                    config.device.label()
                ),
            }
        }
    }
}

/// Streaming with the hot-k-mer cache engaged: replayed chunks change
/// which code path resolves a query, but the cache is deterministic for
/// a fixed chunked stream, so the traffic table still may not vary with
/// the thread count.
#[test]
fn cached_streams_charge_identically_across_threads() {
    let _session = RecorderSession::begin();
    let ds = dataset();
    let (pass, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 30, 31);
    let reads: Vec<_> = pass.iter().cycle().take(pass.len() * 3).cloned().collect();
    let mut reference: Option<prof::ProfSnapshot> = None;
    for threads in THREAD_SWEEP {
        obs::global().reset();
        prof::reset();
        let config = SieveConfig::type3(8).with_hot_kmers(1 << 18);
        HostPipeline::new(device(config, threads, &ds))
            .classify_stream(&reads, 10)
            .unwrap();
        let snap = prof::snapshot();
        match &reference {
            None => reference = Some(snap),
            Some(base) => assert_eq!(
                &snap, base,
                "cached stream threads={threads}: traffic snapshot diverged"
            ),
        }
    }
}
