//! Determinism of the observability layer (DESIGN.md §7): the recorder's
//! *model* metrics — every counter and histogram except the `wall.*`
//! spans — are pure functions of the workload, so the deterministic
//! snapshot must be bit-identical across simulator thread counts.
//!
//! The recorder is process-wide; this file owns it (each integration-test
//! file is its own binary) and serializes its tests on a local mutex so
//! concurrent `#[test]` threads don't interleave workloads.

use std::sync::Mutex;

use proptest::prelude::*;
use sieve::core::{obs, HostPipeline, SieveConfig, SieveDevice};
use sieve::dram::Geometry;
use sieve::genomics::{synth, Kmer};

/// The acceptance sweep: sequential, typical cores, oversubscribed.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Serializes tests in this binary around the global recorder.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

/// Guard: exclusive recorder access, enabled on entry, disabled and
/// cleared on exit (even when an assertion fails mid-test).
struct RecorderSession<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

impl RecorderSession<'_> {
    fn begin() -> Self {
        let guard = RECORDER_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        obs::global().reset();
        obs::global().set_enabled(true);
        Self { _guard: guard }
    }
}

impl Drop for RecorderSession<'_> {
    fn drop(&mut self) {
        obs::global().set_enabled(false);
        obs::global().reset();
    }
}

fn dataset() -> synth::SyntheticDataset {
    synth::make_dataset_with(8, 2048, 31, 4242)
}

fn device(config: SieveConfig, threads: usize, ds: &synth::SyntheticDataset) -> SieveDevice {
    SieveDevice::new(
        config
            .with_geometry(Geometry::scaled_medium())
            .with_threads(threads),
        ds.entries.clone(),
    )
    .expect("dataset fits the scaled geometry")
}

/// Runs `work` once per thread count and returns each run's deterministic
/// snapshot (recorder reset between runs).
fn snapshot_sweep(mut work: impl FnMut(usize)) -> Vec<obs::MetricsSnapshot> {
    THREAD_SWEEP
        .iter()
        .map(|&threads| {
            obs::global().reset();
            work(threads);
            obs::global().snapshot().deterministic()
        })
        .collect()
}

#[test]
fn seeded_device_runs_snapshot_identically_across_thread_counts() {
    let _session = RecorderSession::begin();
    let ds = dataset();
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 60, 7);
    let queries: Vec<Kmer> = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect();
    for config in [
        SieveConfig::type1(),
        SieveConfig::type3(8),
        SieveConfig::type3(8).with_pcie(sieve::core::PcieConfig::gen4_x16()),
    ] {
        let snaps = snapshot_sweep(|threads| {
            device(config.clone(), threads, &ds).run(&queries).unwrap();
        });
        for (i, snap) in snaps.iter().enumerate().skip(1) {
            assert_eq!(
                snap,
                &snaps[0],
                "{} threads={}: deterministic snapshot diverged",
                config.device.label(),
                THREAD_SWEEP[i]
            );
        }
    }
}

/// Work stealing only moves tasks between workers, so the deterministic
/// snapshot (model counters + histograms, `wall.*` dropped — including
/// the new `wall.steal_tasks`) must be bit-identical across steal on/off
/// × the full worker sweep, even on a forced-imbalance batch where one
/// radix bucket holds nearly everything and stealing genuinely fires.
#[test]
fn steal_grid_snapshots_identically_across_worker_counts() {
    let _session = RecorderSession::begin();
    let ds = dataset();
    let mut queries: Vec<Kmer> = (0..6_000u64)
        .map(|i| Kmer::from_u64(0x2AAA_0000_0000 | i, 31).unwrap())
        .collect();
    queries.extend(ds.entries.iter().map(|&(k, _)| k).take(64));
    let mut reference: Option<obs::MetricsSnapshot> = None;
    for steal in [false, true] {
        for threads in THREAD_SWEEP {
            obs::global().reset();
            device(SieveConfig::type3(8).with_steal(steal), threads, &ds)
                .run(&queries)
                .unwrap();
            let snap = obs::global().snapshot().deterministic();
            assert!(
                snap.counter("wall.steal_tasks") == 0,
                "steal accounting leaked into the deterministic view"
            );
            match &reference {
                None => reference = Some(snap),
                Some(base) => assert_eq!(
                    &snap, base,
                    "steal={steal} threads={threads}: deterministic snapshot diverged"
                ),
            }
        }
    }
}

/// The host-kernel axis (DESIGN.md §9): scalar and SWAR kernels extract
/// identical k-mer streams and vote identically, and the planner's sort
/// policy (adaptive cutover, forced radix, forced comparison) only
/// reorders work, so the deterministic snapshot of a streamed
/// classification — host counters, chunk histograms, device model
/// metrics — must be bit-identical across kernels × sort policy × narrow
/// × fused × cache × threads {1,2,4}. (The sort's own `wall.sort_passes_*`
/// and `wall.sort_{narrow,wide}_segments` counters legitimately differ
/// across policies and the narrowing knob; they are wall-prefixed
/// exactly so `deterministic()` drops them.)
#[test]
fn kernel_grid_snapshots_identically() {
    let _session = RecorderSession::begin();
    let ds = dataset();
    let (pass, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 25, 31);
    let reads: Vec<_> = pass.iter().cycle().take(pass.len() * 2).cloned().collect();
    for (fused, hot_kmers) in [(false, 0usize), (true, 1 << 18)] {
        // Cache counters legitimately differ across the cache axis, so the
        // reference snapshot is per-(fused, cache) point; only the kernels,
        // sort-policy, and thread axes must leave it bit-identical.
        let mut reference: Option<obs::MetricsSnapshot> = None;
        for policy in [
            sieve::core::SortPolicy::Adaptive,
            sieve::core::SortPolicy::Lsd,
            sieve::core::SortPolicy::Comparison,
        ] {
            for narrow in [false, true] {
                for kernels in [
                    sieve::core::HostKernels::Scalar,
                    sieve::core::HostKernels::Swar,
                ] {
                    for threads in [1usize, 2, 4] {
                        obs::global().reset();
                        let config = SieveConfig::type3(8)
                            .with_host_kernels(kernels)
                            .with_fused(fused)
                            .with_hot_kmers(hot_kmers)
                            .with_sort_policy(policy)
                            .with_sort_narrow(narrow);
                        HostPipeline::new(device(config, threads, &ds))
                            .classify_stream(&reads, 10)
                            .unwrap();
                        let snap = obs::global().snapshot().deterministic();
                        match &reference {
                            None => reference = Some(snap),
                            Some(base) => assert_eq!(
                                &snap,
                                base,
                                "sort={} narrow={narrow} kernels={} fused={fused} \
                                 hot_kmers={hot_kmers} threads={threads}: \
                                 deterministic snapshot diverged",
                                policy.label(),
                                kernels.label()
                            ),
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn snapshot_counters_reflect_the_workload() {
    let _session = RecorderSession::begin();
    let ds = dataset();
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 25, 11);
    let host = HostPipeline::new(device(SieveConfig::type3(8), 4, &ds));
    let out = host.classify_stream(&reads, 10).unwrap();
    let snap = obs::global().snapshot();
    assert_eq!(snap.counter("host_reads"), reads.len() as u64);
    assert_eq!(snap.counter("host_chunks"), reads.len().div_ceil(10) as u64);
    assert_eq!(snap.counter("host_kmers"), out.report.queries);
    assert_eq!(snap.counter("match_queries"), out.report.queries);
    assert_eq!(snap.counter("match_hits"), out.report.hits);
    assert_eq!(snap.counter("device_runs"), 3);
    // Every resolved query lands in the ETM-depth histogram, and the
    // model's total row count is exactly the histogram's mass (payload
    // rows are accounted separately by the scheduler).
    let rows = snap.histogram("etm_rows_activated").unwrap();
    assert_eq!(rows.count, out.report.queries);
    assert_eq!(
        rows.sum,
        out.report.row_activations - 2 * out.report.hits,
        "ETM histogram mass must equal Region-1 activations"
    );
    // Shard skew histogram: one sample per resolved shard.
    let shards = snap.histogram("shard_queries").unwrap();
    assert_eq!(shards.count, snap.counter("match_shards"));
    assert_eq!(shards.sum, out.report.queries);
    // Wall spans recorded for every instrumented stage.
    for span in ["wall.host.chunk.ns", "wall.device.match.ns"] {
        assert!(
            snap.histogram(span).is_some_and(|h| h.count > 0),
            "missing span {span}"
        );
    }
}

/// A duplicate-heavy stream must genuinely engage the hot-k-mer cache
/// (the grid test in parallel_determinism.rs would otherwise pass
/// vacuously), replayed chunks must still charge the full modeled
/// quantities, and the deterministic snapshot must stay bit-identical
/// across thread counts with the cache on.
#[test]
fn cached_streams_engage_and_snapshot_identically() {
    let _session = RecorderSession::begin();
    let ds = dataset();
    let (pass, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 30, 31);
    let reads: Vec<_> = pass.iter().cycle().take(pass.len() * 3).cloned().collect();
    let stream = |threads: usize, hot_kmers: usize| {
        let config = SieveConfig::type3(8).with_hot_kmers(hot_kmers);
        HostPipeline::new(device(config, threads, &ds))
            .classify_stream(&reads, 10)
            .unwrap()
    };

    let out = stream(1, 1 << 18);
    let on = obs::global().snapshot();
    assert!(
        on.counter("cache_hits") > 0,
        "repeated chunks never engaged the cache"
    );
    assert!(on.counter("cache_inserts") > 0);
    assert!(on
        .histogram("cache_hit_kmers")
        .is_some_and(|h| h.count > 0 && h.sum == on.counter("cache_hits")));
    // Replays charge the same modeled quantities the device stage would
    // have: the model counters and histograms are cache-oblivious.
    assert_eq!(on.counter("match_queries"), out.report.queries);
    assert_eq!(on.counter("match_hits"), out.report.hits);

    obs::global().reset();
    let off_out = stream(1, 0);
    let off = obs::global().snapshot();
    assert_eq!(off_out.report, out.report, "cache changed the report");
    assert_eq!(off.counter("cache_hits"), 0);
    assert_eq!(off.counter("cache_inserts"), 0);
    assert_eq!(off.counter("match_queries"), on.counter("match_queries"));
    assert_eq!(off.counter("match_hits"), on.counter("match_hits"));
    for hist in ["etm_rows_activated", "shard_queries"] {
        let (a, b) = (on.histogram(hist).unwrap(), off.histogram(hist).unwrap());
        assert_eq!((a.count, a.sum), (b.count, b.sum), "{hist} diverged");
    }

    let snaps = snapshot_sweep(|threads| {
        stream(threads, 1 << 18);
    });
    for (i, snap) in snaps.iter().enumerate().skip(1) {
        assert_eq!(
            snap, &snaps[0],
            "cached stream threads={}: deterministic snapshot diverged",
            THREAD_SWEEP[i]
        );
    }
}

#[test]
fn cluster_runs_snapshot_identically_and_record_skew() {
    let _session = RecorderSession::begin();
    let ds = synth::make_dataset_with(16, 4096, 31, 606);
    let queries: Vec<Kmer> = ds.entries.iter().step_by(29).map(|(k, _)| *k).collect();
    let config = || SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
    let snaps = snapshot_sweep(|threads| {
        let cluster =
            sieve::core::SieveCluster::new(config().with_threads(threads), 3, ds.entries.clone())
                .unwrap();
        cluster.run(&queries).unwrap();
    });
    for snap in &snaps[1..] {
        assert_eq!(snap, &snaps[0], "cluster snapshot diverged");
    }
    assert_eq!(snaps[0].counter("cluster_runs"), 1);
    assert_eq!(snaps[0].counter("cluster_device_runs"), 3);
    let skew = snaps[0].histogram("cluster_device_queries").unwrap();
    assert_eq!(skew.count, 3);
    assert_eq!(skew.sum, queries.len() as u64);
}

/// Dedup must be invisible to the model metrics: duplicate k-mers charge
/// the cached outcome's row count, so every counter and histogram in the
/// deterministic snapshot is identical with dedup on or off, at any
/// thread count.
#[test]
fn dedup_modes_snapshot_identically() {
    let _session = RecorderSession::begin();
    let ds = dataset();
    // Heavy forced duplication: stored entries and misses, each ×3.
    let mut queries: Vec<Kmer> = Vec::new();
    for i in 0..200u64 {
        let k = if i % 2 == 0 {
            ds.entries[(i as usize * 37) % ds.entries.len()].0
        } else {
            Kmer::from_u64(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 2, 31).unwrap()
        };
        queries.extend([k; 3]);
    }
    for config in [SieveConfig::type1(), SieveConfig::type3(8)] {
        let mut snaps = Vec::new();
        for dedup in [true, false] {
            for threads in [1usize, 4] {
                obs::global().reset();
                device(config.clone().with_dedup(dedup), threads, &ds)
                    .run(&queries)
                    .unwrap();
                snaps.push((dedup, threads, obs::global().snapshot().deterministic()));
            }
        }
        for (dedup, threads, snap) in &snaps[1..] {
            assert_eq!(
                snap,
                &snaps[0].2,
                "{} dedup={dedup} threads={threads}: snapshot diverged",
                config.device.label()
            );
        }
    }
}

/// The batch `classify_reads` path counts as one host chunk and records
/// its k-mer total, so batch and stream ingestion share one metric
/// vocabulary.
#[test]
fn batch_classify_records_chunk_metrics() {
    let _session = RecorderSession::begin();
    let ds = dataset();
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 15, 5);
    let host = HostPipeline::new(device(SieveConfig::type3(8), 2, &ds));
    let out = host.classify_reads(&reads).unwrap();
    let snap = obs::global().snapshot();
    assert_eq!(snap.counter("host_chunks"), 1);
    let chunk = snap.histogram("chunk_kmers").unwrap();
    assert_eq!(chunk.count, 1);
    assert_eq!(chunk.sum, out.report.queries);
}

#[test]
fn disabled_recorder_observes_nothing() {
    let _session = RecorderSession::begin();
    obs::global().set_enabled(false);
    let ds = dataset();
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 10, 3);
    HostPipeline::new(device(SieveConfig::type3(8), 2, &ds))
        .classify_reads(&reads)
        .unwrap();
    let snap = obs::global().snapshot();
    assert_eq!(snap.counter("host_reads"), 0);
    assert_eq!(snap.counter("match_queries"), 0);
    assert!(snap.histogram("etm_rows_activated").unwrap().count == 0);
    obs::global().set_enabled(true); // session drop expects to disable
}

/// Builds a histogram snapshot from raw values via the public recording
/// path (so bucket placement, min/max, and trimming all go through the
/// production code).
fn snapshot_of(values: &[u64]) -> obs::HistogramSnapshot {
    let h = obs::Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `HistogramSnapshot::merge` is the reduce step of every
    /// deterministic snapshot, so it must behave like multiset union:
    /// commutative and associative on count/sum/min/max *and* the bucket
    /// vectors (whose lengths differ when one side saw larger values).
    #[test]
    fn histogram_snapshot_merge_is_commutative_and_associative(
        a in prop::collection::vec(0u64..1u64 << 48, 0..40),
        b in prop::collection::vec(0u64..1u64 << 48, 0..40),
        c in prop::collection::vec(0u64..1u64 << 48, 0..40),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // Commutativity: a ∪ b == b ∪ a (full struct equality covers
        // count, sum, min, max, and every bucket).
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // Associativity: (a ∪ b) ∪ c == a ∪ (b ∪ c).
        let mut ab_c = ab.clone();
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // And the merged result matches recording the concatenation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&ab_c, &snapshot_of(&all));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_batches_snapshot_bit_identically(raw in prop::collection::vec(any::<u64>(), 0..300)) {
        let _session = RecorderSession::begin();
        let ds = dataset();
        // Mix of misses (random bits) and hits (stored entries).
        let queries: Vec<Kmer> = raw
            .iter()
            .enumerate()
            .map(|(i, &bits)| {
                if i % 4 == 0 {
                    ds.entries[bits as usize % ds.entries.len()].0
                } else {
                    Kmer::from_u64(bits >> 2, 31).unwrap()
                }
            })
            .collect();
        let snaps = snapshot_sweep(|threads| {
            device(SieveConfig::type3(8), threads, &ds).run(&queries).unwrap();
        });
        for (i, snap) in snaps.iter().enumerate().skip(1) {
            prop_assert_eq!(
                snap,
                &snaps[0],
                "threads={}: counter/histogram snapshot diverged",
                THREAD_SWEEP[i]
            );
        }
        prop_assert_eq!(snaps[0].counter("match_queries"), queries.len() as u64);
    }
}
