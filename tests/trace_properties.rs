//! Property tests for the DRAM command-trace validator: schedules built
//! respecting the constraints always validate; compressing any schedule
//! below its constraint spacing always produces the matching violation.

use proptest::prelude::*;
use sieve::dram::trace::{CommandTrace, TraceValidator};
use sieve::dram::{DramCommand, Geometry, TimingParams};

fn validator() -> TraceValidator {
    TraceValidator::new(TimingParams::ddr4_paper())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn legally_spaced_activations_always_validate(
        gaps in prop::collection::vec(0u64..100_000, 1..40),
        bank_picks in prop::collection::vec(0usize..4, 1..40),
    ) {
        // Build a per-bank schedule where each bank's activations are at
        // least a row cycle apart (and tFAW is satisfied because one
        // activation per ≥50 ns can never exceed 4 per 21 ns).
        let g = Geometry::scaled_medium();
        let t = TimingParams::ddr4_paper();
        let mut trace = CommandTrace::new();
        let mut per_bank_next = [0u64; 4];
        for (gap, b) in gaps.iter().zip(&bank_picks) {
            let at = per_bank_next[*b];
            trace.push(at, g.bank(*b), DramCommand::ActivatePrecharge);
            per_bank_next[*b] = at + t.row_cycle() + gap;
        }
        prop_assert!(validator().is_legal(&trace));
    }

    #[test]
    fn compressed_activations_always_violate_trc(
        n in 2usize..20,
        shortfall in 1u64..49_999,
    ) {
        // Spacing strictly below tRC on one bank must trip the validator.
        let g = Geometry::scaled_medium();
        let t = TimingParams::ddr4_paper();
        let spacing = t.row_cycle() - shortfall.min(t.row_cycle() - 1);
        let mut trace = CommandTrace::new();
        for i in 0..n as u64 {
            trace.push(i * spacing, g.bank(0), DramCommand::ActivatePrecharge);
        }
        let violations = validator().validate(&trace);
        prop_assert!(!violations.is_empty());
        prop_assert!(violations.iter().any(|v| v.constraint.contains("tRC")));
    }

    #[test]
    fn column_bursts_respect_rcd_and_ccd(
        bursts in 1usize..30,
        jitter in 0u64..5_000,
    ) {
        let g = Geometry::scaled_medium();
        let t = TimingParams::ddr4_paper();
        let mut trace = CommandTrace::new();
        trace.push(0, g.bank(0), DramCommand::ActivatePrecharge);
        let mut col = t.t_rcd + jitter;
        for _ in 0..bursts {
            trace.push(col, g.bank(0), DramCommand::ReadBurst);
            col += t.t_ccd + jitter;
        }
        prop_assert!(validator().is_legal(&trace));
        // And pulling the first burst before tRCD breaks it.
        let mut early = CommandTrace::new();
        early.push(0, g.bank(0), DramCommand::ActivatePrecharge);
        early.push(t.t_rcd - 1, g.bank(0), DramCommand::ReadBurst);
        prop_assert!(!validator().is_legal(&early));
    }
}
