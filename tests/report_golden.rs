//! Golden snapshots of [`sieve::core::SimReport`] for the three design
//! points on a fixed synthetic dataset, so regressions in timing or
//! energy accounting surface at review time (as a changed literal in the
//! diff) instead of silently shifting figure bins.
//!
//! The workload is fully seeded and the simulation core is bit-identical
//! across thread counts (tests/parallel_determinism.rs), so these values
//! are stable everywhere. If a change legitimately moves them (a model
//! fix, a new energy term), re-run with `--nocapture`, copy the printed
//! actual lines, and justify the shift in the PR.

use sieve::core::{SieveConfig, SieveDevice, SimReport};
use sieve::dram::Geometry;
use sieve::genomics::{synth, Kmer};

fn workload() -> (synth::SyntheticDataset, Vec<Kmer>) {
    let ds = synth::make_dataset_with(8, 2048, 31, 777);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 40, 778);
    let queries = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect();
    (ds, queries)
}

fn run(config: SieveConfig) -> SimReport {
    let (ds, queries) = workload();
    SieveDevice::new(config.with_geometry(Geometry::scaled_medium()), ds.entries)
        .expect("dataset fits the scaled geometry")
        .run(&queries)
        .expect("valid workload")
        .report
}

/// One-line canonical rendering of every report field.
fn golden_line(r: &SimReport) -> String {
    format!(
        "{} q={} h={} makespan={} ideal={} rows={} rows_no_etm={} wr={} rd={} \
         e_act={} e_rd={} e_wr={} e_comp={} e_static={}",
        r.device,
        r.queries,
        r.hits,
        r.makespan_ps,
        r.ideal_makespan_ps,
        r.row_activations,
        r.rows_without_etm,
        r.write_bursts,
        r.read_bursts,
        r.energy.activation_fj,
        r.energy.read_fj,
        r.energy.write_fj,
        r.energy.component_fj,
        r.energy.static_fj,
    )
}

fn assert_golden(config: SieveConfig, expected: &str) {
    let report = run(config);
    let actual = golden_line(&report);
    assert_eq!(
        actual, expected,
        "\n  golden SimReport drifted.\n  actual:   {actual}\n  expected: {expected}\n"
    );
}

#[test]
fn type1_report_matches_golden() {
    assert_golden(
        SieveConfig::type1(),
        "T1 q=2769 h=174 makespan=4744768268 ideal=4744768268 rows=49568 \
         rows_no_etm=171678 wr=0 rd=842471 e_act=99136000000 e_rd=421235500000 \
         e_wr=0 e_comp=6661418197 e_static=910995507456",
    );
}

#[test]
fn type2_report_matches_golden() {
    assert_golden(
        SieveConfig::type2(16),
        "T2.16CB q=2769 h=174 makespan=1761922630 ideal=1761922630 rows=52160 \
         rows_no_etm=171678 wr=39060 rd=348 e_act=104320000000 e_rd=174000000 \
         e_wr=21483000000 e_comp=19174464620 e_static=338289144960",
    );
}

#[test]
fn type3_report_matches_golden() {
    assert_golden(
        SieveConfig::type3(8),
        "T3.8SA q=2769 h=174 makespan=1645511033 ideal=1645511033 rows=52160 \
         rows_no_etm=171678 wr=39060 rd=348 e_act=104320000000 e_rd=174000000 \
         e_wr=21483000000 e_comp=6221464620 e_static=315938118336",
    );
}

#[test]
fn type3_no_etm_report_matches_golden() {
    assert_golden(
        SieveConfig::type3(8).with_etm(false),
        "T3.8SA q=2769 h=174 makespan=5010137879 ideal=5010137879 rows=172026 \
         rows_no_etm=171678 wr=39060 rd=348 e_act=344052000000 e_rd=174000000 \
         e_wr=21483000000 e_comp=20605384620 e_static=961946472768",
    );
}

/// Cross-field invariants the goldens must also satisfy — catches a
/// *consistently* wrong regeneration (all four lines pasted from a buggy
/// build would still have to pass these).
#[test]
fn golden_reports_are_internally_consistent() {
    let t1 = run(SieveConfig::type1());
    let t3 = run(SieveConfig::type3(8));
    let t3_free = run(SieveConfig::type3(8).with_etm(false));
    assert_eq!(t1.queries, t3.queries);
    assert_eq!(t1.hits, t3.hits);
    assert!(t1.makespan_ps > t3.makespan_ps, "T1 is the slowest design");
    assert!(
        t3.row_activations < t3_free.row_activations,
        "ETM prunes rows"
    );
    assert_eq!(t3.rows_without_etm, t3_free.rows_without_etm);
    assert_eq!(
        t3_free.row_activations,
        t3_free.rows_without_etm + 2 * t3_free.hits,
        "without ETM every query burns 2k rows plus 2 payload rows per hit"
    );
}
