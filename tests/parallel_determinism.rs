//! Determinism of the sharded parallel simulation core (DESIGN.md §6):
//! for every `threads` setting — sequential, moderate, oversubscribed —
//! a run's functional results and its full timing/energy report must be
//! bit-identical to the sequential run's.

use proptest::prelude::*;
use sieve::core::{HostPipeline, PipelineOutput, SieveConfig, SieveDevice};
use sieve::dram::Geometry;
use sieve::genomics::{synth, DnaSequence, Kmer};

/// Includes 1 (the sequential reference), the container's typical core
/// counts, and an oversubscribed setting (more workers than shards is
/// common for small batches).
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn dataset() -> synth::SyntheticDataset {
    synth::make_dataset_with(8, 2048, 31, 4242)
}

fn device(config: SieveConfig, threads: usize, ds: &synth::SyntheticDataset) -> SieveDevice {
    SieveDevice::new(
        config
            .with_geometry(Geometry::scaled_medium())
            .with_threads(threads),
        ds.entries.clone(),
    )
    .expect("dataset fits the scaled geometry")
}

fn assert_same_pipeline(a: &PipelineOutput, b: &PipelineOutput, context: &str) {
    assert_eq!(a.reads, b.reads, "{context}: per-read results diverged");
    assert_eq!(a.report, b.report, "{context}: reports diverged");
}

#[test]
fn seeded_workload_runs_identically_on_every_design() {
    let ds = dataset();
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 60, 7);
    let queries: Vec<Kmer> = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect();
    for config in [
        SieveConfig::type1(),
        SieveConfig::type2(8),
        SieveConfig::type3(8),
        SieveConfig::type3(8).with_etm(false),
        SieveConfig::type3(8).with_esp_override(10),
    ] {
        let base = device(config.clone(), 1, &ds).run(&queries).unwrap();
        for threads in &THREAD_SWEEP[1..] {
            let out = device(config.clone(), *threads, &ds).run(&queries).unwrap();
            assert_eq!(
                out.results,
                base.results,
                "{} threads={threads}: functional results diverged",
                config.device.label()
            );
            assert_eq!(
                out.report,
                base.report,
                "{} threads={threads}: report diverged",
                config.device.label()
            );
        }
    }
}

#[test]
fn seeded_pipeline_is_identical_across_thread_counts() {
    let ds = dataset();
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 50, 23);
    let (pairs, _) = synth::simulate_paired_reads(&ds, synth::ReadSimConfig::default(), 200, 25, 29);
    let base = HostPipeline::new(device(SieveConfig::type3(8), 1, &ds));
    let base_reads = base.classify_reads(&reads).unwrap();
    let base_stream = base.classify_stream(&reads, 9).unwrap();
    let base_pairs = base.classify_pairs(&pairs).unwrap();
    for threads in &THREAD_SWEEP[1..] {
        let host = HostPipeline::new(device(SieveConfig::type3(8), *threads, &ds));
        assert_same_pipeline(
            &host.classify_reads(&reads).unwrap(),
            &base_reads,
            "classify_reads",
        );
        assert_same_pipeline(
            &host.classify_stream(&reads, 9).unwrap(),
            &base_stream,
            "classify_stream",
        );
        assert_same_pipeline(
            &host.classify_pairs(&pairs).unwrap(),
            &base_pairs,
            "classify_pairs",
        );
    }
}

#[test]
fn degenerate_batches_are_identical_across_thread_counts() {
    let ds = dataset();
    let one = ds.entries[0].0;
    // Empty batch, single query, and a batch of one repeated k-mer (a
    // single shard, so every worker but one idles).
    for queries in [Vec::new(), vec![one], vec![one; 257]] {
        let base = device(SieveConfig::type3(8), 1, &ds).run(&queries).unwrap();
        for threads in &THREAD_SWEEP[1..] {
            let out = device(SieveConfig::type3(8), *threads, &ds)
                .run(&queries)
                .unwrap();
            assert_eq!(out.results, base.results);
            assert_eq!(out.report, base.report);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_read_sets_classify_identically(raw in prop::collection::vec("[ACGTN]{0,120}", 0..16)) {
        let ds = dataset();
        let reads: Vec<DnaSequence> = raw.iter().map(|s| s.parse().unwrap()).collect();
        let base = HostPipeline::new(device(SieveConfig::type3(8), 1, &ds))
            .classify_reads(&reads)
            .unwrap();
        for threads in [3usize, 8] {
            let out = HostPipeline::new(device(SieveConfig::type3(8), threads, &ds))
                .classify_reads(&reads)
                .unwrap();
            assert_same_pipeline(&out, &base, "random reads");
        }
    }

    #[test]
    fn random_query_batches_run_identically(raw in prop::collection::vec(any::<u64>(), 0..400)) {
        let ds = dataset();
        let queries: Vec<Kmer> = raw
            .iter()
            .map(|&bits| Kmer::from_u64(bits >> 2, 31).unwrap())
            .collect();
        for config in [SieveConfig::type1(), SieveConfig::type3(8)] {
            let base = device(config.clone(), 1, &ds).run(&queries).unwrap();
            for threads in [4usize, 8] {
                let out = device(config.clone(), threads, &ds).run(&queries).unwrap();
                prop_assert_eq!(&out.results, &base.results);
                prop_assert_eq!(&out.report, &base.report);
            }
        }
    }
}
