//! Determinism of the sharded parallel simulation core (DESIGN.md §6):
//! for every `threads` setting — sequential, moderate, oversubscribed —
//! a run's functional results and its full timing/energy report must be
//! bit-identical to the sequential run's.

use proptest::prelude::*;
use sieve::core::{
    HostKernels, HostPipeline, PipelineOutput, SieveConfig, SieveDevice, SortPolicy,
};
use sieve::dram::Geometry;
use sieve::genomics::{synth, DnaSequence, Kmer};

/// Includes 1 (the sequential reference), the container's typical core
/// counts, and an oversubscribed setting (more workers than shards is
/// common for small batches).
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn dataset() -> synth::SyntheticDataset {
    synth::make_dataset_with(8, 2048, 31, 4242)
}

fn device(config: SieveConfig, threads: usize, ds: &synth::SyntheticDataset) -> SieveDevice {
    SieveDevice::new(
        config
            .with_geometry(Geometry::scaled_medium())
            .with_threads(threads),
        ds.entries.clone(),
    )
    .expect("dataset fits the scaled geometry")
}

fn assert_same_pipeline(a: &PipelineOutput, b: &PipelineOutput, context: &str) {
    assert_eq!(a.reads, b.reads, "{context}: per-read results diverged");
    assert_eq!(a.report, b.report, "{context}: reports diverged");
}

#[test]
fn seeded_workload_runs_identically_on_every_design() {
    let ds = dataset();
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 60, 7);
    let queries: Vec<Kmer> = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect();
    for config in [
        SieveConfig::type1(),
        SieveConfig::type2(8),
        SieveConfig::type3(8),
        SieveConfig::type3(8).with_etm(false),
        SieveConfig::type3(8).with_esp_override(10),
    ] {
        let base = device(config.clone(), 1, &ds).run(&queries).unwrap();
        for threads in &THREAD_SWEEP[1..] {
            let out = device(config.clone(), *threads, &ds).run(&queries).unwrap();
            assert_eq!(
                out.results,
                base.results,
                "{} threads={threads}: functional results diverged",
                config.device.label()
            );
            assert_eq!(
                out.report,
                base.report,
                "{} threads={threads}: report diverged",
                config.device.label()
            );
        }
    }
}

#[test]
fn seeded_pipeline_is_identical_across_thread_counts() {
    let ds = dataset();
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 50, 23);
    let (pairs, _) =
        synth::simulate_paired_reads(&ds, synth::ReadSimConfig::default(), 200, 25, 29);
    let base = HostPipeline::new(device(SieveConfig::type3(8), 1, &ds));
    let base_reads = base.classify_reads(&reads).unwrap();
    let base_stream = base.classify_stream(&reads, 9).unwrap();
    let base_pairs = base.classify_pairs(&pairs).unwrap();
    for threads in &THREAD_SWEEP[1..] {
        let host = HostPipeline::new(device(SieveConfig::type3(8), *threads, &ds));
        assert_same_pipeline(
            &host.classify_reads(&reads).unwrap(),
            &base_reads,
            "classify_reads",
        );
        assert_same_pipeline(
            &host.classify_stream(&reads, 9).unwrap(),
            &base_stream,
            "classify_stream",
        );
        assert_same_pipeline(
            &host.classify_pairs(&pairs).unwrap(),
            &base_pairs,
            "classify_pairs",
        );
    }
}

#[test]
fn degenerate_batches_are_identical_across_thread_counts() {
    let ds = dataset();
    let one = ds.entries[0].0;
    // Empty batch, single query, and a batch of one repeated k-mer (a
    // single shard, so every worker but one idles).
    for queries in [Vec::new(), vec![one], vec![one; 257]] {
        let base = device(SieveConfig::type3(8), 1, &ds).run(&queries).unwrap();
        for threads in &THREAD_SWEEP[1..] {
            let out = device(SieveConfig::type3(8), *threads, &ds)
                .run(&queries)
                .unwrap();
            assert_eq!(out.results, base.results);
            assert_eq!(out.report, base.report);
        }
    }
}

/// The pipelined stream (threads > 1) must be a pure optimization: for
/// every chunk size — including the degenerate 1-read chunks and a single
/// whole-batch chunk — and with dedup on or off, its output is
/// bit-identical to the serial single-threaded stream at the same chunk
/// size, and the per-read classifications never depend on chunking.
#[test]
fn pipelined_stream_matches_serial_for_every_chunk_size() {
    let ds = dataset();
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 40, 13);
    for dedup in [true, false] {
        let config = SieveConfig::type3(8).with_dedup(dedup);
        let whole = HostPipeline::new(device(config.clone(), 1, &ds))
            .classify_reads(&reads)
            .unwrap();
        for chunk in [1usize, 7, reads.len()] {
            let serial = HostPipeline::new(device(config.clone(), 1, &ds))
                .classify_stream(&reads, chunk)
                .unwrap();
            assert_eq!(
                serial.reads, whole.reads,
                "dedup={dedup} chunk={chunk}: chunking changed classifications"
            );
            for threads in &THREAD_SWEEP[1..] {
                let out = HostPipeline::new(device(config.clone(), *threads, &ds))
                    .classify_stream(&reads, chunk)
                    .unwrap();
                assert_same_pipeline(
                    &out,
                    &serial,
                    &format!("dedup={dedup} threads={threads} chunk={chunk}"),
                );
            }
        }
    }
}

/// The device-stage optimization grid — fused plan/match pipeline on or
/// off, hot-k-mer cache enabled or disabled, scalar or SWAR host
/// kernels, and every planner sort policy (adaptive cutover, forced
/// radix, forced comparison) — must be pure optimization: for every
/// combination and thread count, a streamed run's per-read
/// classifications and full modeled report are bit-identical to the
/// unfused, uncached, scalar, single-threaded reference. The stream repeats the same reads three times so later
/// chunks re-present earlier chunks' k-mers and the cache genuinely
/// engages (the engagement sampler proves it on the first repeated
/// chunk; device::tests verify the replay path fires on exactly this
/// shape of stream).
#[test]
fn fused_and_cache_grid_is_bit_identical_across_thread_counts() {
    let ds = dataset();
    let (pass, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 30, 31);
    let reads: Vec<DnaSequence> = pass.iter().cycle().take(pass.len() * 3).cloned().collect();
    let chunk = 10;
    let reference = SieveConfig::type3(8)
        .with_fused(false)
        .with_hot_kmers(0)
        .with_host_kernels(HostKernels::Scalar);
    let base = HostPipeline::new(device(reference, 1, &ds))
        .classify_stream(&reads, chunk)
        .unwrap();
    // The narrow axis only matters where the radix pipeline can run, so
    // the comparison policy rides with a single setting.
    let sort_grid = [
        (SortPolicy::Adaptive, false),
        (SortPolicy::Adaptive, true),
        (SortPolicy::Lsd, false),
        (SortPolicy::Lsd, true),
        (SortPolicy::Comparison, true),
    ];
    for (policy, narrow) in sort_grid {
        for kernels in [HostKernels::Scalar, HostKernels::Swar] {
            for fused in [false, true] {
                for hot_kmers in [0usize, 1 << 18] {
                    for steal in [false, true] {
                        for threads in [1usize, 2, 4] {
                            let config = SieveConfig::type3(8)
                                .with_fused(fused)
                                .with_hot_kmers(hot_kmers)
                                .with_steal(steal)
                                .with_host_kernels(kernels)
                                .with_sort_policy(policy)
                                .with_sort_narrow(narrow);
                            let out = HostPipeline::new(device(config, threads, &ds))
                                .classify_stream(&reads, chunk)
                                .unwrap();
                            assert_same_pipeline(
                                &out,
                                &base,
                                &format!(
                                    "sort={} narrow={narrow} kernels={} fused={fused} \
                                     hot_kmers={hot_kmers} steal={steal} threads={threads}",
                                    policy.label(),
                                    kernels.label()
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The work-stealing planner grid (DESIGN.md §6): steal on/off × worker
/// counts {1,2,4,8} must be bit-identical to the sequential no-steal
/// reference — functional results and the full modeled report — on three
/// adversarial batch shapes:
///
/// * `giant` — thousands of distinct keys differing only in their low
///   bits, so the radix partition funnels nearly the whole batch into
///   one bucket (forced imbalance: one worker owns almost everything and
///   the others can only steal);
/// * `narrow` — three distinct keys cycled past the radix threshold, so
///   every multi-worker setting has more workers than occupied buckets;
/// * `mixed` — a spread of stored entries, the balanced common case.
#[test]
fn steal_grid_is_bit_identical_across_worker_counts() {
    let ds = dataset();
    let spread: Vec<Kmer> = ds.entries.iter().map(|&(k, _)| k).take(64).collect();
    let mut giant: Vec<Kmer> = (0..6_000u64)
        .map(|i| Kmer::from_u64(0x2AAA_0000_0000 | i, 31).unwrap())
        .collect();
    giant.extend(spread.iter().copied());
    let narrow: Vec<Kmer> = spread.iter().take(3).cycle().take(4_096).copied().collect();
    let mixed: Vec<Kmer> = spread.iter().cycle().take(5_000).copied().collect();
    for (name, queries) in [("giant", &giant), ("narrow", &narrow), ("mixed", &mixed)] {
        let base = device(SieveConfig::type3(8).with_steal(false), 1, &ds)
            .run(queries)
            .unwrap();
        for steal in [false, true] {
            for fused in [false, true] {
                for threads in THREAD_SWEEP {
                    let config = SieveConfig::type3(8).with_fused(fused).with_steal(steal);
                    let out = device(config, threads, &ds).run(queries).unwrap();
                    let ctx = format!("{name} steal={steal} fused={fused} threads={threads}");
                    assert_eq!(out.results, base.results, "{ctx}: results diverged");
                    assert_eq!(out.report, base.report, "{ctx}: report diverged");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Dedup is a pure optimization: matching each distinct k-mer once and
    /// scattering the cached outcome must be bit-identical — functional
    /// results and the full timing/energy report — to matching every
    /// occurrence, for every design point and thread count. Duplicates are
    /// forced: each drawn k-mer is repeated 1–3× and a stride of stored
    /// entries guarantees repeated hits too.
    #[test]
    fn dedup_on_matches_dedup_off_with_forced_duplicates(
        raw in prop::collection::vec(any::<u64>(), 1..160),
    ) {
        let ds = dataset();
        let mut queries: Vec<Kmer> = Vec::new();
        for (i, &bits) in raw.iter().enumerate() {
            let k = if i % 3 == 0 {
                ds.entries[bits as usize % ds.entries.len()].0
            } else {
                Kmer::from_u64(bits >> 2, 31).unwrap()
            };
            for _ in 0..=(i % 3) {
                queries.push(k);
            }
        }
        // Interleave a second pass of copies so duplicates are not
        // adjacent in the batch.
        let first: Vec<Kmer> = queries.iter().step_by(2).copied().collect();
        queries.extend(first);
        for config in [SieveConfig::type1(), SieveConfig::type2(8), SieveConfig::type3(8)] {
            for threads in [1usize, 4] {
                let on = device(config.clone().with_dedup(true), threads, &ds)
                    .run(&queries)
                    .unwrap();
                let off = device(config.clone().with_dedup(false), threads, &ds)
                    .run(&queries)
                    .unwrap();
                prop_assert_eq!(&on.results, &off.results,
                    "{} threads={}: dedup changed results", config.device.label(), threads);
                prop_assert_eq!(&on.report, &off.report,
                    "{} threads={}: dedup changed the report", config.device.label(), threads);
            }
        }
    }

    /// Random read sets through the stream pipeline: chunk size never
    /// changes classifications, and the pipelined path never changes
    /// anything relative to the serial path at the same chunk size.
    #[test]
    fn random_streams_are_chunk_and_pipeline_invariant(
        raw in prop::collection::vec("[ACGTN]{0,120}", 1..12),
    ) {
        let ds = dataset();
        let reads: Vec<DnaSequence> = raw.iter().map(|s| s.parse().unwrap()).collect();
        let whole = HostPipeline::new(device(SieveConfig::type3(8), 1, &ds))
            .classify_reads(&reads)
            .unwrap();
        for chunk in [1usize, 7, reads.len()] {
            let serial = HostPipeline::new(device(SieveConfig::type3(8), 1, &ds))
                .classify_stream(&reads, chunk)
                .unwrap();
            prop_assert_eq!(&serial.reads, &whole.reads);
            for threads in [2usize, 8] {
                let out = HostPipeline::new(device(SieveConfig::type3(8), threads, &ds))
                    .classify_stream(&reads, chunk)
                    .unwrap();
                assert_same_pipeline(&out, &serial, "random stream");
            }
        }
    }

    #[test]
    fn random_read_sets_classify_identically(raw in prop::collection::vec("[ACGTN]{0,120}", 0..16)) {
        let ds = dataset();
        let reads: Vec<DnaSequence> = raw.iter().map(|s| s.parse().unwrap()).collect();
        let base = HostPipeline::new(device(SieveConfig::type3(8), 1, &ds))
            .classify_reads(&reads)
            .unwrap();
        for threads in [3usize, 8] {
            let out = HostPipeline::new(device(SieveConfig::type3(8), threads, &ds))
                .classify_reads(&reads)
                .unwrap();
            assert_same_pipeline(&out, &base, "random reads");
        }
    }

    #[test]
    fn random_query_batches_run_identically(raw in prop::collection::vec(any::<u64>(), 0..400)) {
        let ds = dataset();
        let queries: Vec<Kmer> = raw
            .iter()
            .map(|&bits| Kmer::from_u64(bits >> 2, 31).unwrap())
            .collect();
        for config in [SieveConfig::type1(), SieveConfig::type3(8)] {
            let base = device(config.clone(), 1, &ds).run(&queries).unwrap();
            for threads in [4usize, 8] {
                let out = device(config.clone(), threads, &ds).run(&queries).unwrap();
                prop_assert_eq!(&out.results, &base.results);
                prop_assert_eq!(&out.report, &base.report);
            }
        }
    }
}
