//! Cross-crate integration tests: the full path from FASTA text through
//! the genomics substrate, the Sieve device, and the host pipeline.

use sieve::core::{HostPipeline, PcieConfig, SieveConfig, SieveDevice};
use sieve::dram::Geometry;
use sieve::genomics::db::{KmerDatabase, SortedDb};
use sieve::genomics::{fasta, fastq, synth, DnaSequence};

fn dataset() -> synth::SyntheticDataset {
    synth::make_dataset_with(8, 4096, 31, 4242)
}

#[test]
fn fasta_to_device_round_trip() {
    // Serialize the synthetic genomes as FASTA, re-parse them, rebuild the
    // database, and verify the device agrees with the software DB.
    let ds = dataset();
    let records: Vec<fasta::FastaRecord> = ds
        .genomes
        .iter()
        .map(|(taxon, seq)| fasta::FastaRecord {
            id: format!("taxon-{}", taxon.0),
            sequence: seq.clone(),
        })
        .collect();
    let text = fasta::write(&records);
    let parsed = fasta::parse(&text).expect("round trip");
    assert_eq!(parsed.len(), ds.genomes.len());

    let rebuilt: Vec<(sieve::genomics::TaxonId, DnaSequence)> = parsed
        .into_iter()
        .zip(&ds.genomes)
        .map(|(rec, (taxon, _))| (*taxon, rec.sequence))
        .collect();
    let entries = sieve::genomics::db::build_entries(
        &rebuilt,
        sieve::genomics::db::DbOptions {
            k: 31,
            ..Default::default()
        },
        Some(&ds.taxonomy),
    )
    .expect("valid k");
    assert_eq!(entries, ds.entries);
}

#[test]
fn all_three_devices_agree_with_software_db() {
    let ds = dataset();
    let reference = SortedDb::from_entries(ds.entries.clone(), 31);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 60, 5);
    let queries: Vec<_> = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect();
    for config in [
        SieveConfig::type1(),
        SieveConfig::type2(16),
        SieveConfig::type3(8),
    ] {
        let device = SieveDevice::new(
            config.with_geometry(Geometry::scaled_medium()),
            ds.entries.clone(),
        )
        .expect("fits");
        let out = device.run(&queries).expect("valid queries");
        for (q, got) in queries.iter().zip(&out.results) {
            assert_eq!(*got, reference.get(*q), "{q}");
        }
        assert_eq!(
            out.report.hits,
            out.results.iter().filter(|r| r.is_some()).count() as u64
        );
    }
}

#[test]
fn fastq_reads_classify_through_pipeline() {
    let ds = dataset();
    let (reads, _) = synth::simulate_reads(
        &ds,
        synth::ReadSimConfig {
            read_len: 92,
            from_reference: 0.7,
            error_rate: 0.01,
            n_rate: 0.001,
        },
        50,
        6,
    );
    // Round-trip the sample through FASTQ (as a sequencer would deliver it).
    let records: Vec<fastq::FastqRecord> = reads
        .iter()
        .enumerate()
        .map(|(i, seq)| fastq::FastqRecord {
            id: format!("read-{i}"),
            quality: "I".repeat(seq.len()),
            sequence: seq.clone(),
        })
        .collect();
    let parsed = fastq::parse(&fastq::write(&records)).expect("round trip");
    let reads_back: Vec<DnaSequence> = parsed.into_iter().map(|r| r.sequence).collect();

    let device = SieveDevice::new(
        SieveConfig::type3(8).with_geometry(Geometry::scaled_medium()),
        ds.entries.clone(),
    )
    .expect("fits");
    let host = HostPipeline::new(device);
    let out = host.classify_reads(&reads_back).expect("pipeline runs");
    let classified = out.reads.iter().filter(|r| r.taxon.is_some()).count();
    assert!(
        classified >= 25,
        "most reference-derived reads must classify, got {classified}/50"
    );
}

#[test]
fn pcie_and_ideal_dispatch_agree_functionally() {
    let ds = dataset();
    let queries: Vec<_> = ds.entries.iter().step_by(37).map(|(k, _)| *k).collect();
    let ideal = SieveDevice::new(
        SieveConfig::type3(8).with_geometry(Geometry::scaled_medium()),
        ds.entries.clone(),
    )
    .unwrap()
    .run(&queries)
    .unwrap();
    let pcie = SieveDevice::new(
        SieveConfig::type3(8)
            .with_geometry(Geometry::scaled_medium())
            .with_pcie(PcieConfig::gen4_x16()),
        ds.entries.clone(),
    )
    .unwrap()
    .run(&queries)
    .unwrap();
    assert_eq!(ideal.results, pcie.results);
    assert!(pcie.report.makespan_ps > ideal.report.makespan_ps);
    assert_eq!(pcie.report.ideal_makespan_ps, ideal.report.makespan_ps);
}

#[test]
fn capacity_scaling_increases_throughput() {
    // The headline scalability claim: more ranks/banks → proportionally
    // more matching throughput for a device-filling workload.
    // Large enough that every bank keeps all `salp` slots busy in both
    // geometries (~100 occupied subarrays).
    let ds = synth::make_dataset_with(96, 8192, 31, 11);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 200, 12);
    let queries: Vec<_> = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect();
    let small = Geometry::new(1, 2, 128, 512, 8192).unwrap();
    let big = Geometry::new(1, 8, 128, 512, 8192).unwrap();
    let run = |g: Geometry| {
        SieveDevice::new(SieveConfig::type3(8).with_geometry(g), ds.entries.clone())
            .unwrap()
            .run(&queries)
            .unwrap()
            .report
    };
    let t_small = run(small);
    let t_big = run(big);
    let ratio = t_small.makespan_ps as f64 / t_big.makespan_ps as f64;
    assert!(
        ratio > 2.0,
        "4x the banks should give substantially more throughput, got {ratio:.2}x"
    );
}
