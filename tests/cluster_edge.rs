//! Edge cases of [`sieve::core::SieveCluster`]: degenerate cluster sizes,
//! empty batches, and maximally skewed routing — the corners a boundary
//! table gets wrong first.

use sieve::core::{SieveCluster, SieveConfig, SieveDevice};
use sieve::dram::Geometry;
use sieve::genomics::{synth, Kmer};

fn dataset() -> synth::SyntheticDataset {
    synth::make_dataset_with(12, 4096, 31, 909)
}

fn config() -> SieveConfig {
    SieveConfig::type3(8).with_geometry(Geometry::scaled_medium())
}

fn queries(ds: &synth::SyntheticDataset, n: usize) -> Vec<Kmer> {
    let (reads, _) = synth::simulate_reads(ds, synth::ReadSimConfig::default(), n, 11);
    reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect()
}

#[test]
fn one_device_cluster_equals_single_device_bit_for_bit() {
    let ds = dataset();
    let qs = queries(&ds, 40);
    // The cluster constructor sorts and dedups; feed the single device
    // the same canonicalized entry set so the comparison is exact.
    let mut entries = ds.entries.clone();
    entries.sort_by_key(|(k, _)| k.bits());
    entries.dedup_by_key(|(k, _)| k.bits());
    let single = SieveDevice::new(config(), entries.clone())
        .unwrap()
        .run(&qs)
        .unwrap();
    let cluster = SieveCluster::new(config(), 1, ds.entries.clone()).unwrap();
    assert_eq!(cluster.len(), 1);
    let out = cluster.run(&qs).unwrap();
    assert_eq!(
        out.results, single.results,
        "functional results must be identical"
    );
    assert_eq!(out.device_reports.len(), 1);
    assert_eq!(
        out.device_reports[0], single.report,
        "report must be bit-for-bit equal"
    );
    assert_eq!(out.hits, single.report.hits);
    assert_eq!(out.makespan_ps, single.report.makespan_ps);
    assert_eq!(out.energy_fj, single.report.energy.total_fj());
}

#[test]
fn empty_query_batch_is_a_clean_no_op() {
    let ds = dataset();
    for devices in [1usize, 3] {
        let cluster = SieveCluster::new(config(), devices, ds.entries.clone()).unwrap();
        let out = cluster.run(&[]).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.hits, 0);
        assert_eq!(out.device_reports.len(), devices);
        for report in &out.device_reports {
            assert_eq!(report.queries, 0);
            assert_eq!(report.row_activations, 0);
        }
        // An idle cluster still reports a makespan (refresh/static floor
        // may be zero for a zero-length run) — it must simply be the max.
        let max = out
            .device_reports
            .iter()
            .map(|r| r.makespan_ps)
            .max()
            .unwrap();
        assert_eq!(out.makespan_ps, max);
    }
}

#[test]
fn batch_routed_entirely_to_one_device_leaves_the_rest_idle() {
    let ds = dataset();
    let cluster = SieveCluster::new(config(), 4, ds.entries.clone()).unwrap();
    // Take stored k-mers that all route to one device: the device of the
    // first entry, filtered by the cluster's own routing.
    let target = cluster.route(ds.entries[0].0);
    let qs: Vec<Kmer> = ds
        .entries
        .iter()
        .map(|(k, _)| *k)
        .filter(|k| cluster.route(*k) == target)
        .take(300)
        .collect();
    assert!(qs.len() >= 100, "need a meaningful skewed batch");
    let out = cluster.run(&qs).unwrap();
    // All stored: every query hits.
    assert_eq!(out.hits, qs.len() as u64);
    assert!(out.results.iter().all(Option::is_some));
    for (d, report) in out.device_reports.iter().enumerate() {
        if d == target {
            assert_eq!(report.queries, qs.len() as u64);
        } else {
            assert_eq!(report.queries, 0, "device {d} should be idle");
            assert_eq!(report.row_activations, 0);
        }
    }
    // The skewed device alone determines the makespan.
    assert_eq!(out.makespan_ps, out.device_reports[target].makespan_ps);
}

#[test]
fn single_repeated_kmer_routes_to_one_shard_of_one_device() {
    // The most extreme skew: one k-mer repeated — a single shard on a
    // single device, every other worker idle — must still agree with the
    // one-device answer and count every duplicate.
    let ds = dataset();
    let (kmer, taxon) = ds.entries[ds.entries.len() / 2];
    let qs = vec![kmer; 257];
    let single = SieveDevice::new(config(), ds.entries.clone())
        .unwrap()
        .run(&qs)
        .unwrap();
    let cluster = SieveCluster::new(config(), 3, ds.entries.clone()).unwrap();
    let out = cluster.run(&qs).unwrap();
    assert_eq!(out.results, single.results);
    assert_eq!(out.hits, 257);
    assert!(out.results.iter().all(|r| *r == Some(taxon)));
}
