//! End-to-end cross-validation: the aggregate scheduler's makespan for a
//! real Type-3 run must agree with the event-driven simulator fed the same
//! resolved work, and the cadence it assumes must be JEDEC-legal.

use sieve::core::{engine, xcheck, DeviceLayout, SieveConfig, SieveDevice, SubarrayIndex};
use sieve::dram::trace::TraceValidator;
use sieve::dram::Geometry;
use sieve::genomics::{synth, Kmer};

fn setup() -> (SieveConfig, synth::SyntheticDataset, Vec<Kmer>) {
    let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
    let ds = synth::make_dataset_with(16, 8192, 31, 1234);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 300, 5);
    let queries = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect();
    (config, ds, queries)
}

/// Rebuilds the per-subarray work a run resolves, through public APIs only.
fn resolve_work(
    config: &SieveConfig,
    layout: &DeviceLayout,
    index: &SubarrayIndex,
    queries: &[Kmer],
) -> Vec<xcheck::SubarrayWork> {
    let banks = config.geometry.total_banks();
    let mut per_sub: Vec<Vec<u32>> = vec![Vec::new(); layout.occupied_subarrays()];
    for q in queries {
        let sub = index.locate(*q);
        let outcome = engine::lookup(
            &layout.subarray(sub),
            *q,
            config.etm_enabled,
            config.etm_flush_cycles,
        );
        per_sub[sub].push(outcome.rows);
    }
    per_sub
        .into_iter()
        .enumerate()
        .map(|(i, query_rows)| xcheck::SubarrayWork {
            bank: i % banks,
            query_rows,
        })
        .collect()
}

#[test]
fn aggregate_makespan_matches_event_driven_ground_truth() {
    let (config, ds, queries) = setup();
    let device = SieveDevice::new(config.clone(), ds.entries.clone()).unwrap();
    let report = device.run(&queries).unwrap().report;
    // Hits are rare (~1%) and add identification/payload time the event
    // model does not track; keep them out of the comparison noise budget.
    assert!(report.hits < report.queries / 20);

    let work = resolve_work(&config, device.layout(), device.index().unwrap(), &queries);
    let event = xcheck::event_driven_type3_makespan(&config, &work, 8);
    // The aggregate model adds refresh stretch (~4.7 %) and hit overheads;
    // the event model is batch-granular (can be tighter than whole-subarray
    // LPT). Demand agreement within 15 %.
    let ratio = report.makespan_ps as f64 / event as f64;
    assert!(
        ratio > 0.95 && ratio < 1.15,
        "aggregate {} vs event {} (ratio {ratio:.3})",
        report.makespan_ps,
        event
    );
}

#[test]
fn assumed_cadence_is_timing_legal_for_every_occupied_subarray() {
    let (config, ds, queries) = setup();
    let device = SieveDevice::new(config.clone(), ds.entries.clone()).unwrap();
    let work = resolve_work(&config, device.layout(), device.index().unwrap(), &queries);
    let validator = TraceValidator::new(config.timing);
    let mut checked = 0;
    for w in work.iter().filter(|w| !w.query_rows.is_empty()).take(8) {
        let bank = config.geometry.bank(w.bank);
        let trace = xcheck::emit_subarray_trace(&config, bank, &w.query_rows);
        let violations = validator.validate(&trace);
        assert!(
            violations.is_empty(),
            "illegal cadence: {:?}",
            violations.first()
        );
        checked += 1;
    }
    assert!(checked > 0, "no occupied subarrays checked");
}
