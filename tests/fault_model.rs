//! Property tests for `bitsim::FaultModel`, the defective-latch study the
//! paper's SPICE validation rules out for healthy parts:
//!
//! * a **stuck-at-zero** column can never be reported as a match, so the
//!   only queries it corrupts are those whose own match column is stuck;
//! * a **stuck-at-one** column survives to full depth, defeating early
//!   termination for every query;
//! * divergence between the fast engine (fault-free by construction) and
//!   the bit-accurate engine under faults is **exactly** the injected
//!   column set — predictable from Column Finder semantics alone.

use proptest::prelude::*;
use sieve::core::bitsim::{BitAccurateSubarray, FaultModel};
use sieve::core::{engine, etm, SieveConfig, SieveDevice};
use sieve::dram::Geometry;
use sieve::genomics::{synth, Kmer};

const FLUSH: u32 = 1;

fn fixture() -> (SieveDevice, u32) {
    let ds = synth::make_dataset_with(4, 1024, 31, 31);
    let config = SieveConfig::type3(4).with_geometry(Geometry::scaled_medium());
    let cols = config.geometry.cols_per_row;
    (
        SieveDevice::new(config, ds.entries).expect("dataset fits"),
        cols,
    )
}

/// Sampled stored ranks: spread across the subarray, deterministic.
fn probe_ranks(len: usize, salt: u64) -> Vec<usize> {
    (0..24usize)
        .map(|i| {
            i.wrapping_mul(977)
                .wrapping_add((salt % 131) as usize * 131)
                % len
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Stuck-at-zero columns never match: probing every sampled stored
    /// entry, the lookup is corrupted exactly when the entry's own match
    /// column is stuck — and then it is a false miss (the CF can never
    /// land on a stuck-zero column). Everything else agrees with the
    /// fault-free fast engine bit for bit.
    #[test]
    fn stuck_zero_corrupts_exactly_its_own_columns(raw in prop::collection::vec(any::<u64>(), 1..6)) {
        let (device, cols) = fixture();
        let sa = device.layout().subarray(0);
        let bits = BitAccurateSubarray::from_view(&sa, cols);
        // Fault set: reference columns of arbitrary ranks.
        let stuck_zero_cols: Vec<u32> = raw
            .iter()
            .map(|&r| sa.col_of_rank(r as usize % sa.len()))
            .collect();
        let faults = FaultModel {
            stuck_zero_cols: stuck_zero_cols.clone(),
            ..FaultModel::default()
        };
        for rank in probe_ranks(sa.len(), raw[0]) {
            let (kmer, taxon) = sa.entries()[rank];
            let own_col = sa.col_of_rank(rank);
            let healthy = engine::lookup(&sa, kmer, true, FLUSH);
            prop_assert_eq!(healthy.hit, Some((rank, taxon)));
            let f = bits.lookup_with_faults(kmer, true, FLUSH, &faults);
            let injected = stuck_zero_cols.contains(&own_col);
            prop_assert_eq!(
                f.corrupted, injected,
                "rank {} col {}: divergence must be exactly the injected set",
                rank, own_col
            );
            if injected {
                prop_assert_eq!(f.outcome.hit, None, "stuck-zero can only cause false misses");
            } else {
                prop_assert_eq!(f.outcome, healthy, "untouched columns must match the fast engine");
            }
        }
    }

    /// Stuck-at-one columns survive to full depth: any lookup against a
    /// faulty part with at least one stuck-one latch burns all 2k rows —
    /// ETM never fires — and reports max LCP = 2k.
    #[test]
    fn stuck_one_survives_to_full_depth(
        raw_cols in prop::collection::vec(any::<u64>(), 1..5),
        probe_bits in any::<u64>(),
    ) {
        let (device, cols) = fixture();
        let sa = device.layout().subarray(0);
        let bits = BitAccurateSubarray::from_view(&sa, cols);
        let mut stuck_one_cols: Vec<u32> =
            raw_cols.iter().map(|&c| (c % u64::from(cols)) as u32).collect();
        stuck_one_cols.sort_unstable();
        stuck_one_cols.dedup();
        let faults = FaultModel {
            stuck_one_cols,
            ..FaultModel::default()
        };
        let full_depth = etm::rows_activated(62, 62, true, FLUSH).rows;
        // A guaranteed miss (random probe) and a guaranteed hit both
        // burn the full depth under a stuck-one latch.
        let probes = [
            Kmer::from_u64(probe_bits >> 2, 31).unwrap(),
            sa.entries()[probe_bits as usize % sa.len()].0,
        ];
        for probe in probes {
            let f = bits.lookup_with_faults(probe, true, FLUSH, &faults);
            prop_assert_eq!(f.outcome.max_lcp, 62, "a stuck-one latch survives every row");
            prop_assert_eq!(f.outcome.rows, full_depth, "ETM must never fire");
        }
    }

    /// Full Column Finder semantics under mixed (disjoint) fault sets:
    /// the surviving set is `{own column} \ stuck_zero ∪ stuck_one`, the
    /// CF reports its lowest column, and the corruption flag is exactly
    /// `reported ≠ fault-free` — so fast-engine vs. bitsim divergence is
    /// a pure function of the injected columns.
    #[test]
    fn divergence_is_predicted_by_column_finder_semantics(
        raw_sz in prop::collection::vec(any::<u64>(), 0..4),
        raw_so in prop::collection::vec(any::<u64>(), 0..4),
    ) {
        let (device, cols) = fixture();
        let sa = device.layout().subarray(0);
        let bits = BitAccurateSubarray::from_view(&sa, cols);
        let sz: Vec<u32> = raw_sz.iter().map(|&r| sa.col_of_rank(r as usize % sa.len())).collect();
        // Keep the sets disjoint: a latch cannot be stuck both ways.
        let so: Vec<u32> = raw_so
            .iter()
            .map(|&c| (c % u64::from(cols)) as u32)
            .filter(|c| !sz.contains(c))
            .collect();
        let faults = FaultModel {
            stuck_zero_cols: sz.clone(),
            stuck_one_cols: so.clone(),
        };
        for rank in probe_ranks(sa.len(), 7) {
            let (kmer, _) = sa.entries()[rank];
            let own_col = sa.col_of_rank(rank);
            let healthy = engine::lookup(&sa, kmer, true, FLUSH);
            // Predicted survivors after all 62 rows.
            let mut survivors: Vec<u32> = so.clone();
            if !sz.contains(&own_col) {
                survivors.push(own_col);
            }
            let predicted_hit = survivors.iter().min().and_then(|&c| {
                sa.rank_of_col(c).map(|r| (r, sa.entries()[r].1))
            });
            let f = bits.lookup_with_faults(kmer, true, FLUSH, &faults);
            prop_assert_eq!(f.outcome.hit, predicted_hit, "rank {}: CF must pick the lowest survivor", rank);
            prop_assert_eq!(
                f.corrupted,
                predicted_hit != healthy.hit,
                "rank {}: corruption flag must equal fast-engine divergence",
                rank
            );
        }
    }
}

#[test]
fn empty_fault_model_never_diverges_from_the_fast_engine() {
    let (device, cols) = fixture();
    let sa = device.layout().subarray(0);
    let bits = BitAccurateSubarray::from_view(&sa, cols);
    let faults = FaultModel::default();
    let mut state = 0x5eedu64;
    for i in 0..100 {
        let probe = if i % 2 == 0 {
            sa.entries()[(i * 53) % sa.len()].0
        } else {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Kmer::from_u64(state >> 2, 31).unwrap()
        };
        let f = bits.lookup_with_faults(probe, true, FLUSH, &faults);
        assert!(!f.corrupted);
        assert_eq!(f.outcome, engine::lookup(&sa, probe, true, FLUSH));
    }
}
