//! Property tests for the file formats: arbitrary records must round-trip
//! through write → parse, and the parsers must reject malformed inputs
//! without panicking.

use proptest::prelude::*;
use sieve::genomics::{fasta, fastq, DnaSequence};

fn dna_body() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(vec!['A', 'C', 'G', 'T', 'N']), 1..300)
        .prop_map(|v| v.into_iter().collect())
}

fn record_id() -> impl Strategy<Value = String> {
    // Printable, newline-free ids (headers are single lines).
    "[a-zA-Z0-9_.:|-]{1,40}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fasta_round_trips(
        records in prop::collection::vec((record_id(), dna_body()), 1..10)
    ) {
        let original: Vec<fasta::FastaRecord> = records
            .into_iter()
            .map(|(id, body)| fasta::FastaRecord {
                id,
                sequence: body.parse::<DnaSequence>().expect("valid alphabet"),
            })
            .collect();
        let text = fasta::write(&original);
        let parsed = fasta::parse(&text).expect("own output must parse");
        prop_assert_eq!(parsed, original);
    }

    #[test]
    fn fastq_round_trips(
        records in prop::collection::vec((record_id(), dna_body()), 1..10)
    ) {
        let original: Vec<fastq::FastqRecord> = records
            .into_iter()
            .map(|(id, body)| {
                let len = body.len();
                fastq::FastqRecord {
                    id,
                    sequence: body.parse::<DnaSequence>().expect("valid alphabet"),
                    quality: "I".repeat(len),
                }
            })
            .collect();
        let text = fastq::write(&original);
        let parsed = fastq::parse(&text).expect("own output must parse");
        prop_assert_eq!(parsed, original);
    }

    #[test]
    fn fasta_parser_never_panics(text in "\\PC{0,400}") {
        // Arbitrary printable garbage: must return Ok or Err, not panic.
        let _ = fasta::parse(&text);
    }

    #[test]
    fn fastq_parser_never_panics(text in "\\PC{0,400}") {
        let _ = fastq::parse(&text);
    }

    #[test]
    fn sequence_parser_rejects_or_accepts_consistently(text in "\\PC{0,120}") {
        match text.parse::<DnaSequence>() {
            Ok(seq) => {
                // Accepted → upper-cased alphabet only, display round-trips.
                prop_assert!(seq
                    .as_bytes()
                    .iter()
                    .all(|b| matches!(b, b'A' | b'C' | b'G' | b'T' | b'N')));
                let again: DnaSequence = seq.to_string().parse().expect("round trip");
                prop_assert_eq!(again, seq);
            }
            Err(_) => {
                // Rejected → some byte is outside the alphabet.
                prop_assert!(text
                    .bytes()
                    .any(|b| !matches!(b.to_ascii_uppercase(), b'A' | b'C' | b'G' | b'T' | b'N')));
            }
        }
    }
}
