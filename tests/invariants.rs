//! Property tests on the core data structures: packed k-mers, LCP algebra,
//! sequences, databases, the ETM row-count model, and the index table.

use proptest::prelude::*;
use sieve::core::etm::rows_activated;
use sieve::core::{DeviceLayout, SieveConfig, SubarrayIndex};
use sieve::dram::Geometry;
use sieve::genomics::db::{HashDb, HybridDb, KmerDatabase, SortedDb};
use sieve::genomics::{Base, DnaSequence, Kmer, TaxonId};

fn kmer(k: usize) -> impl Strategy<Value = Kmer> {
    let max = if k == 32 {
        u64::MAX
    } else {
        (1u64 << (2 * k)) - 1
    };
    (0..=max).prop_map(move |bits| Kmer::from_u64(bits, k).expect("in range"))
}

fn dna_string() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(vec!['A', 'C', 'G', 'T', 'N']), 0..200)
        .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kmer_display_parse_round_trip(k in kmer(31)) {
        let text = k.to_string();
        let back: Kmer = text.parse().expect("valid text");
        prop_assert_eq!(k, back);
    }

    #[test]
    fn kmer_order_is_lexicographic(a in kmer(16), b in kmer(16)) {
        let lex = a
            .bases()
            .map(Base::to_bits)
            .collect::<Vec<_>>()
            .cmp(&b.bases().map(Base::to_bits).collect::<Vec<_>>());
        prop_assert_eq!(a.cmp(&b), lex);
    }

    #[test]
    fn lcp_is_symmetric_and_bounded(a in kmer(31), b in kmer(31)) {
        let l = a.lcp_bits(&b);
        prop_assert_eq!(l, b.lcp_bits(&a));
        prop_assert!(l <= 62);
        prop_assert_eq!(l == 62, a == b);
        // The first l bits agree; bit l differs (when l < 62).
        for j in 0..l {
            prop_assert_eq!(a.bit(j), b.bit(j));
        }
        if l < 62 {
            prop_assert_ne!(a.bit(l), b.bit(l));
        }
    }

    #[test]
    fn lcp_triangle_on_sorted_triples(mut xs in prop::collection::vec(0u64..(1 << 40), 3)) {
        // For sorted a <= b <= c: lcp(a, c) == min(lcp(a, b), lcp(b, c)).
        xs.sort_unstable();
        let (a, b, c) = (
            Kmer::from_u64(xs[0], 20).expect("in range"),
            Kmer::from_u64(xs[1], 20).expect("in range"),
            Kmer::from_u64(xs[2], 20).expect("in range"),
        );
        prop_assert_eq!(a.lcp_bits(&c), a.lcp_bits(&b).min(b.lcp_bits(&c)));
    }

    #[test]
    fn reverse_complement_involution(k in kmer(31)) {
        prop_assert_eq!(k.reverse_complement().reverse_complement(), k);
        let canon = k.canonical();
        prop_assert!(canon.bits() <= k.bits());
        prop_assert_eq!(canon, k.reverse_complement().canonical());
    }

    #[test]
    fn sequence_kmers_are_windows(text in dna_string(), k in 1usize..8) {
        if let Ok(seq) = text.parse::<DnaSequence>() {
            for (off, km) in seq.kmers(k) {
                // Window content equals the k-mer's bases.
                let window: String = seq.to_string()[off..off + k].to_string();
                prop_assert_eq!(km.to_string(), window);
            }
        }
    }

    #[test]
    fn dbs_agree_on_membership(
        bits in prop::collection::btree_set(0u64..(1 << 30), 1..200),
        probes in prop::collection::vec(0u64..(1 << 30), 1..50),
    ) {
        let entries: Vec<(Kmer, TaxonId)> = bits
            .iter()
            .enumerate()
            .map(|(i, b)| (Kmer::from_u64(*b, 15).expect("in range"), TaxonId(i as u32)))
            .collect();
        let sorted = SortedDb::from_entries(entries.clone(), 15);
        let hash = HashDb::from_entries(&entries, 15);
        let hybrid = HybridDb::from_entries(&entries, 15);
        for p in probes {
            let q = Kmer::from_u64(p, 15).expect("in range");
            let expected = sorted.get(q);
            prop_assert_eq!(hash.get(q), expected);
            prop_assert_eq!(hybrid.get(q), expected);
        }
    }

    #[test]
    fn sorted_db_max_lcp_is_brute_force(
        bits in prop::collection::btree_set(0u64..(1 << 30), 1..200),
        probe in 0u64..(1 << 30),
    ) {
        let entries: Vec<(Kmer, TaxonId)> = bits
            .iter()
            .map(|b| (Kmer::from_u64(*b, 15).expect("in range"), TaxonId(0)))
            .collect();
        let db = SortedDb::from_entries(entries.clone(), 15);
        let q = Kmer::from_u64(probe, 15).expect("in range");
        let brute = entries.iter().map(|(k, _)| k.lcp_bits(&q)).max().unwrap();
        prop_assert_eq!(db.max_lcp_bits(q), brute);
    }

    #[test]
    fn etm_rows_monotone_in_lcp(bit_len in 2usize..64, flush in 0u32..4) {
        let mut prev = 0;
        for lcp in 0..=bit_len {
            let a = rows_activated(lcp, bit_len, true, flush);
            prop_assert!(a.rows as usize >= prev);
            prop_assert!(a.rows as usize <= bit_len);
            prop_assert_eq!(a.hit, lcp == bit_len);
            // ETM never activates more rows than the no-ETM design.
            let no_etm = rows_activated(lcp, bit_len, false, flush);
            prop_assert!(a.rows <= no_etm.rows);
            prev = a.rows as usize;
        }
    }

    #[test]
    fn index_routes_every_stored_kmer_home(
        bits in prop::collection::btree_set(0u64..(1 << 30), 600..1500),
    ) {
        let entries: Vec<(Kmer, TaxonId)> = bits
            .iter()
            .enumerate()
            .map(|(i, b)| (Kmer::from_u64(*b, 15).expect("in range"), TaxonId(i as u32)))
            .collect();
        let config = SieveConfig::type3(4)
            .with_geometry(Geometry::scaled_small())
            .with_k(15);
        let layout = DeviceLayout::build(entries.clone(), &config).expect("fits");
        let index = SubarrayIndex::build(&layout);
        for (kmer, taxon) in entries.iter().step_by(29) {
            let sub = index.locate(*kmer);
            let sa = layout.subarray(sub);
            let found = sa.entries().iter().find(|(k, _)| k == kmer);
            prop_assert_eq!(found.map(|(_, t)| *t), Some(*taxon));
        }
    }
}
