//! Differential harness for the host kernels (DESIGN.md §9): every SWAR
//! kernel — packed k-mer extraction, revcomp/canonical, the branchless
//! majority vote, the merge cursor's key compares — must be byte-identical
//! to its scalar twin on *every* input, not just typical reads. This file
//! drives both implementations over adversarial grids (N-density sweeps,
//! reads straddling the 32-base word boundary, palindromes, empty and
//! sub-k reads), over seeded random inputs, and through the full pipeline
//! including the obs/trace model streams.
//!
//! tier1.sh additionally runs this binary under
//! `RUSTFLAGS="-C overflow-checks=on"` so any shift/mask arithmetic
//! overflow in the SWAR kernels fails loudly.
//!
//! The recorder and tracer are process-wide; the tests that touch them
//! serialize on a local mutex (this file is its own binary).

use std::sync::Mutex;

use proptest::prelude::*;
use sieve::core::{obs, trace, vote_reads, HostKernels, HostPipeline, SieveConfig, SieveDevice};
use sieve::dram::Geometry;
use sieve::genomics::{pack, synth, DnaSequence, Kmer, TaxonId};

/// The k grid: two odd ks with a middle base (one of them the paper's 31)
/// and a divisor-of-64 k that keeps windows word-aligned.
const KS: [usize; 3] = [15, 21, 31];

/// N-density sweep, in percent.
const DENSITIES: [u32; 4] = [0, 1, 50, 100];

/// Serializes the obs/trace tests around the process-wide globals.
static GLOBALS_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic LCG read: `n_percent` of positions are `N`, the rest a
/// seeded ACGT stream. Seeds are part of the test vector — see
/// `kernel_equivalence.proptest-regressions` for the cases that earned a
/// permanent slot.
fn lcg_read(len: usize, n_percent: u32, seed: u64) -> DnaSequence {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 33
    };
    let mut s = String::with_capacity(len);
    for _ in 0..len {
        let r = next();
        if r % 100 < u64::from(n_percent) {
            s.push('N');
        } else {
            s.push(['A', 'C', 'G', 'T'][(r / 100 % 4) as usize]);
        }
    }
    s.parse().expect("alphabet is ACGTN")
}

/// The scalar reference extraction: the rolling per-base iterator, read
/// by read — exactly what `HostKernels::Scalar` runs inside the pipeline.
fn scalar_extract(reads: &[DnaSequence], k: usize) -> (Vec<Kmer>, Vec<u32>) {
    let mut kmers = Vec::new();
    let mut owners = Vec::new();
    for (ri, read) in reads.iter().enumerate() {
        for (_, kmer) in read.kmers(k) {
            kmers.push(kmer);
            owners.push(ri as u32);
        }
    }
    (kmers, owners)
}

/// The SWAR extraction driven directly through `pack::Extractor`, with
/// owner tags assigned the same way the pipeline does.
fn swar_extract(reads: &[DnaSequence], k: usize) -> (Vec<Kmer>, Vec<u32>) {
    let mut kmers = Vec::new();
    let mut owners = Vec::new();
    let mut ex = pack::Extractor::new();
    for (ri, read) in reads.iter().enumerate() {
        let n = ex.extract_forward_into(read, k, &mut kmers);
        owners.resize(owners.len() + n, ri as u32);
    }
    (kmers, owners)
}

/// Asserts both extraction twins agree on `reads` — forward stream,
/// owner tags, and canonical stream.
fn assert_extract_twins(reads: &[DnaSequence], k: usize, label: &str) {
    let scalar = scalar_extract(reads, k);
    let swar = swar_extract(reads, k);
    assert_eq!(swar, scalar, "forward extraction diverged: {label}");
    // Canonical: SWAR branchless min(fwd, rc) vs the scalar-twin
    // composition of the iterator and the per-base revcomp.
    let mut ex = pack::Extractor::new();
    for (ri, read) in reads.iter().enumerate() {
        let mut canon_swar = Vec::new();
        ex.extract_canonical_into(read, k, &mut canon_swar);
        let canon_scalar: Vec<Kmer> = read
            .kmers(k)
            .map(|(_, kmer)| kmer.canonical_scalar())
            .collect();
        assert_eq!(
            canon_swar, canon_scalar,
            "canonical extraction diverged: {label}, read {ri}"
        );
    }
}

fn host_for(ds: &synth::SyntheticDataset, k: usize, kernels: HostKernels) -> HostPipeline {
    let config = SieveConfig::type3(8)
        .with_geometry(Geometry::scaled_medium())
        .with_k(k)
        .with_host_kernels(kernels)
        .with_threads(1);
    HostPipeline::new(SieveDevice::new(config, ds.entries.clone()).expect("dataset fits"))
}

// ---------------------------------------------------------------------
// Extraction: deterministic grids
// ---------------------------------------------------------------------

#[test]
fn extraction_grid_densities_and_lengths() {
    // The satellite grid: N densities × read lengths around k and the
    // 32-base word boundary × the k grid, single reads and batches.
    for &k in &KS {
        let lens = [0, 1, k - 1, k, k + 1, 31, 32, 33, 1000];
        for &density in &DENSITIES {
            let mut batch = Vec::new();
            for (i, &len) in lens.iter().enumerate() {
                let read = lcg_read(len, density, (k * 1000 + len * 7 + i) as u64);
                assert_extract_twins(
                    std::slice::from_ref(&read),
                    k,
                    &format!("k={k} len={len} density={density}%"),
                );
                batch.push(read);
            }
            // The whole length grid as one batch: owner tags must track
            // the read boundaries identically.
            assert_extract_twins(&batch, k, &format!("k={k} density={density}% batch"));
        }
    }
}

#[test]
fn extraction_n_at_every_offset_mod_32() {
    // A single N walked across a 100-base read hits every offset mod 32,
    // in particular the 31/32/33 word-boundary cluster; windows covering
    // the N must vanish identically in both twins.
    for &k in &[15usize, 31] {
        let clean = lcg_read(100, 0, 0xBEEF ^ k as u64);
        for off in 0..clean.len() {
            let mut bytes = clean.as_bytes().to_vec();
            bytes[off] = b'N';
            let read = DnaSequence::from_bytes(&bytes).unwrap();
            assert_extract_twins(
                std::slice::from_ref(&read),
                k,
                &format!("k={k} N at offset {off}"),
            );
        }
    }
}

#[test]
fn extraction_palindromic_windows() {
    // s + revcomp(s) makes the central window its own reverse complement
    // (even k): the canonical tie (fwd == rc) must break identically.
    for &k in &[16usize, 20, 32] {
        let half = lcg_read(k / 2 + 40, 0, k as u64 * 31);
        let mut bytes = half.as_bytes().to_vec();
        bytes.extend(half.reverse_complement().as_bytes());
        let read = DnaSequence::from_bytes(&bytes).unwrap();
        assert_extract_twins(std::slice::from_ref(&read), k, &format!("palindrome k={k}"));
    }
}

#[test]
fn extraction_homopolymers_and_max_k() {
    // Homopolymers stress the all-equal compare paths; k=32 exercises the
    // no-spare-bits masks (kmask == u64::MAX, shift-by-zero realignment).
    for base in ["A", "C", "G", "T"] {
        let read: DnaSequence = base.repeat(200).parse().unwrap();
        for &k in &[15usize, 31, 32] {
            assert_extract_twins(
                std::slice::from_ref(&read),
                k,
                &format!("homopolymer {base} k={k}"),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Extraction: checked-in regression cases
// ---------------------------------------------------------------------
// Mirrors kernel_equivalence.proptest-regressions: the vendored proptest
// derives its seed stream from the test name and cannot replay stored
// seeds, so each archived case is also pinned here as a plain test.

#[test]
fn regression_all_n_read() {
    for &k in &KS {
        let read: DnaSequence = "N".repeat(64).parse().unwrap();
        assert_extract_twins(std::slice::from_ref(&read), k, "all-N");
        assert_eq!(swar_extract(std::slice::from_ref(&read), k).0, vec![]);
    }
}

#[test]
fn regression_n_straddles_word_boundary() {
    // 31 bases + N + 31 bases: the N sits at packed-word offset 31; the
    // two flanks each emit exactly one 31-mer.
    let read: DnaSequence = format!(
        "{}N{}",
        "ACGTACG".repeat(5).get(0..31).unwrap(),
        "TGCATGC".repeat(5).get(0..31).unwrap()
    )
    .parse()
    .unwrap();
    assert_extract_twins(std::slice::from_ref(&read), 31, "N at word boundary");
    assert_eq!(swar_extract(std::slice::from_ref(&read), 31).0.len(), 2);
}

#[test]
fn regression_one_base_reads_and_empty_batch() {
    let reads: Vec<DnaSequence> = ["A", "C", "G", "T", "N", ""]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    for &k in &KS {
        assert_extract_twins(&reads, k, "1-base reads");
    }
    // k=1: every valid base is its own window.
    let (kmers, owners) = swar_extract(&reads, 1);
    assert_eq!(kmers.len(), 4);
    assert_eq!(owners, vec![0, 1, 2, 3]);
    assert_extract_twins(&reads, 1, "1-base reads, k=1");
    assert_extract_twins(&[], 31, "empty batch");
}

#[test]
fn regression_alternating_n() {
    // "ANANAN…": no valid window for any k > 1, every k windows poisoned.
    let read: DnaSequence = "AN".repeat(50).parse().unwrap();
    for &k in &[2usize, 15, 31] {
        assert_extract_twins(std::slice::from_ref(&read), k, "alternating N");
        assert!(swar_extract(std::slice::from_ref(&read), k).0.is_empty());
    }
}

// ---------------------------------------------------------------------
// Revcomp/canonical kernels: exhaustive small-k equivalence
// ---------------------------------------------------------------------

#[test]
fn revcomp_twins_exhaustive_small_k() {
    // All 4^k values for every k ≤ 11 — in particular every odd k, whose
    // middle base must come back complemented (not copied) by the SWAR
    // field reversal. This grid would have caught any middle-base or
    // realignment-shift mismatch.
    for k in 1..=11usize {
        for bits in 0..1u64 << (2 * k) {
            let kmer = Kmer::from_u64(bits, k).unwrap();
            let swar = kmer.reverse_complement();
            let scalar = kmer.reverse_complement_scalar();
            assert_eq!(swar, scalar, "revcomp diverged at k={k} bits={bits:#x}");
            assert_eq!(
                kmer.canonical(),
                kmer.canonical_scalar(),
                "canonical diverged at k={k} bits={bits:#x}"
            );
        }
    }
}

#[test]
fn revcomp_is_an_involution_at_full_width() {
    // k=32 cannot be swept exhaustively; a seeded walk checks the
    // involution and twin agreement where no spare bits exist.
    let mut x = 0x0123_4567_89AB_CDEFu64;
    for _ in 0..10_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let kmer = Kmer::from_u64(x, 32).unwrap();
        assert_eq!(kmer.reverse_complement(), kmer.reverse_complement_scalar());
        assert_eq!(kmer.reverse_complement().reverse_complement(), kmer);
    }
}

// ---------------------------------------------------------------------
// Vote kernels
// ---------------------------------------------------------------------

/// Builds a non-decreasing `owners` run plus per-k-mer outcomes from a
/// seed: taxon ids are drawn from a small range so ties are common.
fn vote_inputs(n_reads: usize, seed: u64) -> (Vec<u32>, Vec<Option<TaxonId>>) {
    let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(7);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut owners = Vec::new();
    let mut results = Vec::new();
    for ri in 0..n_reads {
        for _ in 0..(next() % 7) {
            owners.push(ri as u32);
            let r = next();
            results.push((r % 3 != 0).then_some(TaxonId((r >> 8) as u32 % 5)));
        }
    }
    (owners, results)
}

#[test]
fn vote_twins_agree_over_seeded_runs() {
    for seed in 0..200u64 {
        let n_reads = (seed as usize % 9) + 1;
        let (owners, results) = vote_inputs(n_reads, seed);
        let scalar = vote_reads(n_reads, &owners, &results, HostKernels::Scalar);
        let swar = vote_reads(n_reads, &owners, &results, HostKernels::Swar);
        assert_eq!(scalar, swar, "vote diverged at seed {seed}");
    }
}

#[test]
fn vote_ties_resolve_to_lowest_taxon_in_both_kernels() {
    // Two-way tie (2 vs 1): both kernels must pick taxon 1, and a read
    // with no hits must stay unclassified.
    let owners = vec![0, 0, 0, 0, 1];
    let results = vec![
        Some(TaxonId(2)),
        Some(TaxonId(1)),
        Some(TaxonId(2)),
        Some(TaxonId(1)),
        None,
    ];
    for kernels in [HostKernels::Scalar, HostKernels::Swar] {
        let out = vote_reads(2, &owners, &results, kernels);
        assert_eq!(out[0].taxon, Some(TaxonId(1)), "{}", kernels.label());
        assert_eq!(out[0].hit_kmers, 4);
        assert_eq!(out[0].total_kmers, 4);
        assert_eq!(out[1].taxon, None);
        assert_eq!(out[1].total_kmers, 1);
    }
}

// ---------------------------------------------------------------------
// Full pipeline, including obs/trace model streams
// ---------------------------------------------------------------------

/// A read set mixing simulated dataset reads with adversarial LCG reads
/// (N runs, sub-k lengths, word-boundary lengths).
fn mixed_reads(ds: &synth::SyntheticDataset, k: usize) -> Vec<DnaSequence> {
    let (mut reads, _) = synth::simulate_reads(
        ds,
        synth::ReadSimConfig {
            read_len: 90,
            from_reference: 0.7,
            error_rate: 0.02,
            n_rate: 0.01,
        },
        24,
        (k as u64) * 13 + 1,
    );
    for &density in &DENSITIES {
        for &len in &[0usize, 1, k - 1, k, 31, 32, 33, 200] {
            reads.push(lcg_read(len, density, (len * 31 + density as usize) as u64));
        }
    }
    reads
}

#[test]
fn pipeline_outputs_identical_across_kernels() {
    for &k in &KS {
        let ds = synth::make_dataset_with(8, 2048, k, 55);
        let reads = mixed_reads(&ds, k);
        let scalar = host_for(&ds, k, HostKernels::Scalar)
            .classify_reads(&reads)
            .unwrap();
        let swar = host_for(&ds, k, HostKernels::Swar)
            .classify_reads(&reads)
            .unwrap();
        assert_eq!(scalar.reads, swar.reads, "k={k}: classifications diverged");
        assert_eq!(scalar.report, swar.report, "k={k}: report diverged");
        // Streaming path too (serial; the threaded grids live in
        // tests/parallel_determinism.rs).
        let s_stream = host_for(&ds, k, HostKernels::Scalar)
            .classify_stream(&reads, 7)
            .unwrap();
        let w_stream = host_for(&ds, k, HostKernels::Swar)
            .classify_stream(&reads, 7)
            .unwrap();
        assert_eq!(s_stream.reads, w_stream.reads, "k={k}: stream diverged");
        assert_eq!(s_stream.report, w_stream.report);
    }
}

#[test]
fn paired_pipeline_identical_across_kernels() {
    let ds = synth::make_dataset_with(8, 2048, 31, 55);
    let config = synth::ReadSimConfig {
        read_len: 80,
        from_reference: 1.0,
        error_rate: 0.02,
        n_rate: 0.005,
    };
    let (pairs, _) = synth::simulate_paired_reads(&ds, config, 250, 30, 17);
    let scalar = host_for(&ds, 31, HostKernels::Scalar)
        .classify_pairs(&pairs)
        .unwrap();
    let swar = host_for(&ds, 31, HostKernels::Swar)
        .classify_pairs(&pairs)
        .unwrap();
    assert_eq!(scalar.reads, swar.reads);
    assert_eq!(scalar.report, swar.report);
}

#[test]
fn obs_model_snapshot_identical_across_kernels() {
    let _guard = GLOBALS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let ds = synth::make_dataset_with(8, 2048, 31, 4242);
    let reads = mixed_reads(&ds, 31);
    let rec = obs::global();
    let snaps: Vec<obs::MetricsSnapshot> = [HostKernels::Scalar, HostKernels::Swar]
        .iter()
        .map(|&kernels| {
            rec.reset();
            rec.set_enabled(true);
            host_for(&ds, 31, kernels)
                .classify_stream(&reads, 11)
                .unwrap();
            let snap = rec.snapshot().deterministic();
            rec.set_enabled(false);
            rec.reset();
            snap
        })
        .collect();
    assert_eq!(
        snaps[0], snaps[1],
        "deterministic obs snapshot diverged across kernels"
    );
}

#[test]
fn trace_model_stream_identical_across_kernels() {
    let _guard = GLOBALS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let ds = synth::make_dataset_with(8, 2048, 31, 4242);
    let reads = mixed_reads(&ds, 31);
    let tracer = trace::global();
    let lines: Vec<String> = [HostKernels::Scalar, HostKernels::Swar]
        .iter()
        .map(|&kernels| {
            tracer.reset();
            tracer.set_enabled(true);
            host_for(&ds, 31, kernels)
                .classify_stream(&reads, 11)
                .unwrap();
            let snap = tracer.snapshot();
            tracer.set_enabled(false);
            tracer.reset();
            snap.model_lines()
        })
        .collect();
    assert!(!lines[0].is_empty(), "workload must emit model events");
    assert_eq!(
        lines[0], lines[1],
        "model trace stream diverged across kernels"
    );
}

// ---------------------------------------------------------------------
// Property-based sweeps
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random ACGTN strings: both twins, forward and canonical, all ks.
    #[test]
    fn prop_extract_twins_agree(
        raw in prop::collection::vec("[ACGTN]{0,120}", 0..10),
        k in prop::sample::select(vec![15usize, 21, 31, 32]),
    ) {
        let reads: Vec<DnaSequence> = raw.iter().map(|s| s.parse().unwrap()).collect();
        let scalar = scalar_extract(&reads, k);
        let swar = swar_extract(&reads, k);
        prop_assert_eq!(swar, scalar);
    }

    /// The density sweep as a property: exact N fraction and length drawn
    /// per case, twins compared on the emitted streams.
    #[test]
    fn prop_density_sweep(
        len in 0usize..600,
        density in prop::sample::select(vec![0u32, 1, 50, 100]),
        seed in any::<u64>(),
    ) {
        let read = lcg_read(len, density, seed);
        for &k in &KS {
            let reads = std::slice::from_ref(&read);
            prop_assert_eq!(swar_extract(reads, k), scalar_extract(reads, k),
                "k={} len={} density={}% seed={:#x}", k, len, density, seed);
        }
    }

    /// Random vote inputs: run lengths, misses, and heavy taxon ties.
    #[test]
    fn prop_vote_twins_agree(n_reads in 1usize..12, seed in any::<u64>()) {
        let (owners, results) = vote_inputs(n_reads, seed);
        prop_assert_eq!(
            vote_reads(n_reads, &owners, &results, HostKernels::Scalar),
            vote_reads(n_reads, &owners, &results, HostKernels::Swar)
        );
    }
}
