//! Device-level behavioural properties: ETM transparency, parallelism
//! monotonicity, energy accounting sanity, and failure handling.

use proptest::prelude::*;
use sieve::core::{SieveConfig, SieveDevice, SieveError};
use sieve::dram::Geometry;
use sieve::genomics::{synth, Kmer};

fn built() -> (synth::SyntheticDataset, Vec<Kmer>) {
    let ds = synth::make_dataset_with(8, 2048, 31, 909);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 40, 910);
    let queries = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect();
    (ds, queries)
}

fn run(
    config: SieveConfig,
    ds: &synth::SyntheticDataset,
    queries: &[Kmer],
) -> sieve::core::RunOutput {
    SieveDevice::new(
        config.with_geometry(Geometry::scaled_medium()),
        ds.entries.clone(),
    )
    .expect("fits")
    .run(queries)
    .expect("valid")
}

#[test]
fn etm_is_functionally_transparent_on_all_designs() {
    let (ds, queries) = built();
    for config in [
        SieveConfig::type1(),
        SieveConfig::type2(8),
        SieveConfig::type3(8),
    ] {
        let with = run(config.clone().with_etm(true), &ds, &queries);
        let without = run(config.with_etm(false), &ds, &queries);
        assert_eq!(with.results, without.results);
        assert!(with.report.makespan_ps <= without.report.makespan_ps);
        assert!(with.report.energy.total_fj() < without.report.energy.total_fj());
    }
}

#[test]
fn salp_monotonically_improves_makespan() {
    let (ds, queries) = built();
    let mut prev = u64::MAX;
    for salp in [1u32, 2, 4, 8, 16, 32] {
        let report = run(SieveConfig::type3(salp), &ds, &queries).report;
        assert!(
            report.makespan_ps <= prev,
            "salp {salp} regressed: {} > {prev}",
            report.makespan_ps
        );
        prev = report.makespan_ps;
    }
}

#[test]
fn compute_buffers_monotonically_improve_makespan() {
    let (ds, queries) = built();
    let mut prev = u64::MAX;
    for cb in [1u32, 2, 4, 8, 16, 32, 64] {
        let report = run(SieveConfig::type2(cb), &ds, &queries).report;
        assert!(
            report.makespan_ps <= prev,
            "cb {cb} regressed: {} > {prev}",
            report.makespan_ps
        );
        prev = report.makespan_ps;
    }
}

#[test]
fn energy_ledger_is_complete() {
    let (ds, queries) = built();
    let report = run(SieveConfig::type3(8), &ds, &queries).report;
    let e = &report.energy;
    assert!(e.activation_fj > 0, "row activations must cost energy");
    assert!(
        e.write_fj > 0,
        "query-batch replacement writes must cost energy"
    );
    assert!(e.component_fj > 0, "matcher/ETM overhead must be charged");
    assert!(
        e.static_fj > 0,
        "static power over the makespan must be charged"
    );
    // The 6 % matcher overhead claim: component ≈ 6 % of activation energy
    // (plus per-hit finders, which are small at ~1 % hit rate).
    let ratio = e.component_fj as f64 / e.activation_fj as f64;
    assert!(
        ratio > 0.03 && ratio < 0.12,
        "component overhead out of band: {ratio:.3}"
    );
}

#[test]
fn esp_override_only_reduces_rows_never_changes_results() {
    let (ds, queries) = built();
    let exact = run(SieveConfig::type3(8), &ds, &queries);
    let capped = run(SieveConfig::type3(8).with_esp_override(10), &ds, &queries);
    assert_eq!(exact.results, capped.results);
    assert!(capped.report.row_activations <= exact.report.row_activations);
    assert!(capped.report.makespan_ps <= exact.report.makespan_ps);
}

#[test]
fn oversized_database_is_rejected() {
    let ds = synth::make_dataset_with(16, 8192, 31, 3);
    let tiny = Geometry::scaled_small(); // 8,192 k-mers of capacity
    let err = SieveDevice::new(
        SieveConfig::type3(4).with_geometry(tiny),
        ds.entries.clone(),
    )
    .unwrap_err();
    assert!(matches!(err, SieveError::CapacityExceeded { .. }));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cluster_sharding_is_functionally_transparent(devices in 1usize..6) {
        let (ds, queries) = built();
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let single = SieveDevice::new(config.clone(), ds.entries.clone())
            .expect("fits")
            .run(&queries)
            .expect("valid");
        let cluster = sieve::core::SieveCluster::new(config, devices, ds.entries.clone())
            .expect("builds");
        let out = cluster.run(&queries).expect("valid");
        prop_assert_eq!(out.results, single.results);
        prop_assert_eq!(out.hits, single.report.hits);
        prop_assert_eq!(out.device_reports.len(), devices.min(cluster.len()));
    }

    #[test]
    fn query_order_never_affects_functional_results(seed in 0u64..1000) {
        let (ds, mut queries) = built();
        let device = SieveDevice::new(
            SieveConfig::type3(8).with_geometry(Geometry::scaled_medium()),
            ds.entries.clone(),
        )
        .expect("fits");
        let baseline = device.run(&queries).expect("valid");
        // Deterministic shuffle.
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for i in (1..queries.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            queries.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let shuffled = device.run(&queries).expect("valid");
        // Same multiset of outcomes, same totals.
        prop_assert_eq!(baseline.report.hits, shuffled.report.hits);
        prop_assert_eq!(
            baseline.report.row_activations,
            shuffled.report.row_activations
        );
        prop_assert_eq!(baseline.report.makespan_ps, shuffled.report.makespan_ps);
    }
}
