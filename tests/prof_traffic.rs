//! Analytic byte-count assertions for the roofline traffic layer
//! (DESIGN.md §10): the radix sort's recorded charges must equal the
//! closed forms (12 B per pair per pass-scan, partial-stage drains
//! charged to `sort.flush`), arbitrary inputs must match the
//! differential predictor that replays the planner's decisions from the
//! raw key stream, and the host extract phase must charge exactly its
//! k-mer stream.
//!
//! The prof table is process-wide (like the recorder); this file owns
//! both and serializes its tests on a local mutex.

use std::sync::Mutex;

use sieve::core::{obs, prof, sort_bench, HostPipeline, SieveConfig, SieveDevice, SortPolicy};
use sieve::dram::Geometry;
use sieve::genomics::synth;

/// `size_of::<radix::Pair>()` — the layout the closed forms charge per
/// pair per scan. The differential tests below would fail loudly if the
/// layout ever drifted from this constant.
const PAIR_BYTES: u64 = 12;

/// `size_of::<radix::NarrowPair>()` — the repacked 8-byte layout the
/// pipeline moves when a diff window fits 32 bits and narrowing is on.
const NARROW_BYTES: u64 = 8;

/// Pairs per write-combining staging line (radix's `STAGE`): each
/// bucket's trailing `count % STAGE` pairs drain through `sort.flush`.
const STAGE: u64 = 8;

/// Serializes tests in this binary around the global recorder + table.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

struct RecorderSession<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

impl RecorderSession<'_> {
    fn begin() -> Self {
        let guard = RECORDER_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        obs::global().reset();
        obs::global().set_enabled(true);
        prof::reset();
        Self { _guard: guard }
    }
}

impl Drop for RecorderSession<'_> {
    fn drop(&mut self) {
        obs::global().set_enabled(false);
        obs::global().reset();
        prof::reset();
    }
}

/// Runs the production sort over `keys` and returns the prof snapshot
/// it recorded.
fn sort_traffic(
    keys: &[u64],
    policy: SortPolicy,
    threads: usize,
    narrow: bool,
) -> prof::ProfSnapshot {
    let mut harness = sort_bench::SortHarness::new(keys);
    obs::global().reset();
    prof::reset();
    harness.run(policy, threads, narrow);
    prof::snapshot()
}

/// Deterministic key stream (SplitMix64) without an RNG dependency.
fn splitmix(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

/// An 8-bit key span over a batch whose bucket counts are all multiples
/// of the staging line: one global pass, no flush, no local passes —
/// every charge is a closed form in `n` alone, at the record width the
/// `narrow` knob selects (the 8-bit span always fits 32 bits, so the
/// narrowed run repacks the whole array up front).
#[test]
fn single_pass_uniform_batch_matches_the_closed_form() {
    let _session = RecorderSession::begin();
    // 256 buckets × 160 pairs each; 160 ≡ 0 (mod STAGE) → zero drains.
    let n: u64 = 256 * 160;
    let keys: Vec<u64> = (0..n).map(|i| i % 256).collect();
    for (narrow, elem) in [(false, PAIR_BYTES), (true, NARROW_BYTES)] {
        let snap = sort_traffic(&keys, SortPolicy::Lsd, 1, narrow);
        let full = n * elem;
        assert_eq!(
            snap.traffic(prof::Phase::SortHist),
            prof::Traffic {
                bytes_read: full,
                bytes_written: 0,
                items: n
            },
            "narrow={narrow}"
        );
        assert_eq!(
            snap.traffic(prof::Phase::SortScatter),
            prof::Traffic {
                bytes_read: full,
                bytes_written: full,
                items: n
            },
            "narrow={narrow}"
        );
        assert_eq!(
            snap.traffic(prof::Phase::SortFlush),
            prof::Traffic::default()
        );
        // A single planned pass finishes in the global scatter: no local
        // phase at all.
        assert_eq!(
            snap.traffic(prof::Phase::SortLocal),
            prof::Traffic::default()
        );
        // The global repack + widen scans are the narrowed run's only
        // extra charge: 12 → 8 B down, 8 → 12 B back up, once per pair.
        let expect_narrow = if narrow {
            prof::Traffic {
                bytes_read: n * (PAIR_BYTES + NARROW_BYTES),
                bytes_written: n * (NARROW_BYTES + PAIR_BYTES),
                items: 2 * n,
            }
        } else {
            prof::Traffic::default()
        };
        assert_eq!(
            snap.traffic(prof::Phase::SortNarrow),
            expect_narrow,
            "narrow={narrow}"
        );
    }
}

/// Appending five more pairs to one bucket makes its count 165 ≡ 5
/// (mod STAGE): exactly five pairs must move from the scatter's write
/// charge to the flush phase, regardless of how many workers drained
/// their private staging lines.
#[test]
fn partial_stage_drains_are_charged_to_flush() {
    let _session = RecorderSession::begin();
    let mut keys: Vec<u64> = (0..256u64 * 160).map(|i| i % 256).collect();
    keys.extend([0u64; 5]);
    let n = keys.len() as u64;
    let drains = 165 % STAGE; // bucket 0 holds 165 pairs now
    assert_eq!(drains, 5);
    for (narrow, elem) in [(false, PAIR_BYTES), (true, NARROW_BYTES)] {
        for threads in [1usize, 4] {
            let snap = sort_traffic(&keys, SortPolicy::Lsd, threads, narrow);
            assert_eq!(
                snap.traffic(prof::Phase::SortFlush),
                prof::Traffic {
                    bytes_read: 0,
                    bytes_written: drains * elem,
                    items: drains
                },
                "narrow={narrow} threads={threads}"
            );
            assert_eq!(
                snap.traffic(prof::Phase::SortScatter),
                prof::Traffic {
                    bytes_read: n * elem,
                    bytes_written: (n - drains) * elem,
                    items: n
                },
                "narrow={narrow} threads={threads}"
            );
            assert_eq!(snap.traffic(prof::Phase::SortHist).bytes_read, n * elem);
        }
    }
}

/// Degenerate batches and the comparison policy charge nothing: a
/// comparison sort's traffic is data- and allocator-dependent, so the
/// model refuses to invent a number for it (see the prof module docs).
#[test]
fn comparison_and_degenerate_batches_charge_nothing() {
    let _session = RecorderSession::begin();
    let zero = prof::ProfSnapshot {
        phases: prof::Phase::ALL.map(|p| (p, prof::Traffic::default())),
    };
    for narrow in [false, true] {
        // All keys equal: the stable order is the input order, no
        // passes (and nothing for the narrowing path to repack).
        assert_eq!(
            sort_traffic(&[42u64; 100], SortPolicy::Lsd, 1, narrow),
            zero
        );
        // Single pair: nothing to sort.
        assert_eq!(sort_traffic(&[7u64], SortPolicy::Lsd, 1, narrow), zero);
        // Forced comparison sort on a radix-friendly batch.
        let keys = splitmix(1, 50_000);
        assert_eq!(sort_traffic(&keys, SortPolicy::Comparison, 1, narrow), zero);
    }
}

/// The differential gate: for arbitrary key distributions — full-width
/// multi-pass, narrow-span, and skew-heavy — the executed pipeline's
/// recorded charges must equal the predictor's replay of the planner
/// (pass plan, adaptive cutover, per-segment replans), at every thread
/// count. Each distribution also states what it must exercise, so the
/// equality cannot pass vacuously.
#[test]
fn recorded_traffic_matches_the_differential_predictor() {
    let _session = RecorderSession::begin();
    let wide = splitmix(2, 60_000); // 64-bit span: multi-pass + local
    let narrow: Vec<u64> = splitmix(3, 60_000).iter().map(|k| k & 0xF_FFFF).collect();
    let skewed: Vec<u64> = splitmix(4, 60_000)
        .iter()
        .enumerate()
        .map(|(i, &k)| if i % 3 == 0 { k & 0xFFF } else { 1u64 << 40 })
        .collect();
    for (label, keys) in [("wide", &wide), ("narrow", &narrow), ("skewed", &skewed)] {
        for policy in [SortPolicy::Adaptive, SortPolicy::Lsd] {
            for knob in [false, true] {
                let predicted = sort_bench::predict_traffic(keys, policy, knob);
                for threads in [1usize, 2, 4] {
                    let recorded = sort_traffic(keys, policy, threads, knob);
                    for &(phase, expected) in &predicted {
                        assert_eq!(
                            recorded.traffic(phase),
                            expected,
                            "{label} {policy:?} narrow={knob} threads={threads}: \
                             {} diverged from the predictor",
                            phase.name()
                        );
                    }
                }
            }
        }
        // Structural invariants of the global pass, on the predictor the
        // recorded side just matched, at both knob settings: every pair
        // is written exactly once between scatter and flush, and flush
        // bytes are whole records of whichever width the planner chose
        // (12 B, or 8 B when the batch narrowed globally).
        for knob in [false, true] {
            let p = sort_bench::predict_traffic(keys, SortPolicy::Lsd, knob);
            let (hist, scatter, flush, narrowed) = (p[0].1, p[1].1, p[2].1, p[4].1);
            let n = keys.len() as u64;
            let elem = hist.bytes_read / n;
            assert!(
                elem == PAIR_BYTES || (knob && elem == NARROW_BYTES),
                "{label}: global pass moves whole records"
            );
            assert_eq!(scatter.bytes_written + flush.bytes_written, hist.bytes_read);
            assert_eq!(flush.bytes_written, flush.items * elem);
            // The repack + widen scans exist iff the batch narrowed
            // globally, and then charge exactly one down- and one
            // up-conversion per pair.
            if elem == NARROW_BYTES {
                assert_eq!(narrowed.items, 2 * n, "{label}");
                assert_eq!(narrowed.bytes_read, n * (PAIR_BYTES + NARROW_BYTES));
                assert_eq!(narrowed.bytes_written, n * (NARROW_BYTES + PAIR_BYTES));
            } else {
                assert_eq!(narrowed, prof::Traffic::default(), "{label}");
            }
        }
    }
    // Non-vacuity: the wide batch must have engaged multi-pass local
    // sorting, its narrowed run must actually shrink the local charge
    // (tie-ranked segment repacks — the committed workload's shape), the
    // narrow batch must narrow globally, and at least one batch must
    // have partial-line drains.
    let wide_local = sort_bench::predict_traffic(&wide, SortPolicy::Lsd, false)[3].1;
    assert!(
        wide_local.bytes_read > 0,
        "wide batch never ran local passes"
    );
    let wide_local_narrowed = sort_bench::predict_traffic(&wide, SortPolicy::Lsd, true)[3].1;
    assert!(
        wide_local_narrowed.bytes_read < wide_local.bytes_read,
        "narrowing never engaged on the wide batch's local segments"
    );
    let narrow_global = sort_bench::predict_traffic(&narrow, SortPolicy::Lsd, true)[4].1;
    assert!(
        narrow_global.items > 0,
        "narrow batch never narrowed globally"
    );
    let flush_any = [&wide, &narrow, &skewed].iter().any(|k| {
        sort_bench::predict_traffic(k, SortPolicy::Lsd, false)[2]
            .1
            .items
            > 0
    });
    assert!(flush_any, "no batch exercised the flush charge");
}

/// Host extract must charge exactly its stream: one byte per input
/// base read, one `(Kmer, id)` record per produced k-mer written — and
/// the device phases must satisfy their per-record shapes.
#[test]
fn pipeline_phases_charge_their_streams() {
    let _session = RecorderSession::begin();
    let ds = synth::make_dataset_with(8, 2048, 31, 4242);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 40, 7);
    let device = SieveDevice::new(
        SieveConfig::type3(8)
            .with_geometry(Geometry::scaled_medium())
            .with_threads(2),
        ds.entries.clone(),
    )
    .expect("dataset fits the scaled geometry");
    obs::global().reset();
    prof::reset();
    HostPipeline::new(device).classify_reads(&reads).unwrap();
    let snap = prof::snapshot();
    let metrics = obs::global().snapshot();

    let extract = snap.traffic(prof::Phase::HostExtract);
    let base_bytes: u64 = reads.iter().map(|r| r.len() as u64).sum();
    assert_eq!(extract.bytes_read, base_bytes);
    assert_eq!(extract.items, metrics.counter("host_kmers"));
    // One 16 B Kmer plus one u32 owner id per extracted k-mer.
    assert_eq!(extract.bytes_written, extract.items * 20);

    let matched = snap.traffic(prof::Phase::DeviceMatch);
    assert!(matched.items > 0, "no match tasks ran");
    assert_eq!(matched.bytes_read, matched.items * PAIR_BYTES);
    let reduce = snap.traffic(prof::Phase::DeviceReduce);
    assert_eq!(reduce.bytes_read, reduce.bytes_written);
    // Match writes and reduce moves the same 8 B hit records.
    assert_eq!(matched.bytes_written, reduce.bytes_written);
    assert_eq!(reduce.bytes_written, reduce.items * 8);
}

/// The simulated transport link charges its transfer sizes: one record
/// per `transfer_ps` call (the deploy-time image push), bytes written
/// only (host → device).
#[test]
fn pcie_transfers_charge_their_sizes() {
    let _session = RecorderSession::begin();
    let ds = synth::make_dataset_with(8, 2048, 31, 4242);
    obs::global().reset();
    prof::reset();
    sieve::core::SieveApi::deploy(
        SieveConfig::type3(8).with_geometry(Geometry::scaled_medium()),
        sieve::core::Transport::pcie_gen4_x16(),
        ds.entries.clone(),
    )
    .expect("type3 deploys on PCIe gen4 x16");
    let snap = prof::snapshot();
    let metrics = obs::global().snapshot();
    let pcie = snap.traffic(prof::Phase::PcieTransfer);
    assert!(pcie.items > 0, "deploy never pushed the device image");
    assert_eq!(pcie.items, metrics.counter("transport_transfers"));
    assert_eq!(pcie.bytes_read, 0);
    assert!(pcie.bytes_written > 0);
}
