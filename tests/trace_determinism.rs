//! Determinism and export contracts of the tracing subsystem (DESIGN.md
//! §8): the **model-time** event stream — shard dispatch, task splits,
//! batch issue, ETM termination, CF drain, dedup decisions, cluster hops
//! — is a pure function of the workload, so its canonical rendering must
//! be byte-identical across simulator thread counts. Wall-clock spans
//! measure the simulator itself and carry no such contract.
//!
//! The tracer is process-wide; this file owns it (each integration-test
//! file is its own binary) and serializes its tests on a local mutex.

use std::sync::Mutex;

use sieve::core::{
    trace, HostKernels, HostPipeline, PcieConfig, SieveCluster, SieveConfig, SieveDevice,
    SortPolicy,
};
use sieve::dram::Geometry;
use sieve::genomics::{synth, Kmer};

/// The acceptance sweep from ISSUE 4: `--threads 1/2/4`.
const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// Serializes tests in this binary around the global tracer.
static TRACER_LOCK: Mutex<()> = Mutex::new(());

/// Guard: exclusive tracer access, enabled on entry, disabled and cleared
/// on exit (even when an assertion fails mid-test).
struct TracerSession<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

impl TracerSession<'_> {
    fn begin() -> Self {
        let guard = TRACER_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        trace::global().reset();
        trace::global().set_enabled(true);
        Self { _guard: guard }
    }
}

impl Drop for TracerSession<'_> {
    fn drop(&mut self) {
        trace::global().set_enabled(false);
        trace::global().reset();
    }
}

fn dataset() -> synth::SyntheticDataset {
    synth::make_dataset_with(8, 2048, 31, 4242)
}

fn device(config: SieveConfig, threads: usize, ds: &synth::SyntheticDataset) -> SieveDevice {
    SieveDevice::new(
        config
            .with_geometry(Geometry::scaled_medium())
            .with_threads(threads),
        ds.entries.clone(),
    )
    .expect("dataset fits the scaled geometry")
}

/// Runs `work` once per thread count and returns each run's canonical
/// model-stream rendering plus its snapshot (tracer reset between runs).
fn model_sweep(mut work: impl FnMut(usize)) -> Vec<(String, trace::TraceSnapshot)> {
    THREAD_SWEEP
        .iter()
        .map(|&threads| {
            trace::global().reset();
            work(threads);
            let snap = trace::global().snapshot();
            (snap.model_lines(), snap)
        })
        .collect()
}

/// Duplicate-heavy read workload (every read appears twice, so every
/// k-mer repeats and dedup builds instead of bypassing): exercises dedup,
/// task splitting, and multi-chunk streaming.
fn stream_workload(ds: &synth::SyntheticDataset) -> Vec<sieve::genomics::DnaSequence> {
    let (reads, _) = synth::simulate_reads(ds, synth::ReadSimConfig::default(), 30, 7);
    reads.iter().flat_map(|r| [r.clone(), r.clone()]).collect()
}

#[test]
fn stream_model_trace_is_byte_identical_across_thread_counts() {
    let _session = TracerSession::begin();
    let ds = dataset();
    let reads = stream_workload(&ds);
    let runs = model_sweep(|threads| {
        let host = HostPipeline::new(device(
            SieveConfig::type3(8).with_pcie(PcieConfig::gen4_x16()),
            threads,
            &ds,
        ));
        host.classify_stream(&reads, 25).unwrap();
    });
    let (base_lines, base_snap) = &runs[0];
    assert!(!base_lines.is_empty(), "workload must emit model events");
    assert_eq!(base_snap.dropped_model, 0, "ring must not overflow here");
    for (i, (lines, snap)) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            lines, base_lines,
            "threads={}: model event stream diverged",
            THREAD_SWEEP[i]
        );
        assert_eq!(snap.dropped_model, base_snap.dropped_model);
    }
    // The stream covers every instrumented model layer.
    for name in [
        "dedup.build",
        "shard.dispatch",
        "task.split",
        "etm.terminate",
        "batch.issue",
        "dispatch.stall",
        "device.run",
    ] {
        assert!(
            base_snap.model.iter().any(|e| e.name == name),
            "missing model event {name}\n{base_lines}"
        );
    }
    // Streamed chunks advance the model clock run by run: device.run
    // events start at strictly increasing timestamps.
    let starts: Vec<u64> = base_snap
        .model
        .iter()
        .filter(|e| e.name == "device.run")
        .map(|e| e.ts)
        .collect();
    assert!(starts.len() >= 2, "expected one device.run per chunk");
    assert!(starts.windows(2).all(|w| w[0] < w[1]), "{starts:?}");
}

/// The fused plan/match pipeline, the hot-k-mer cache, and the planner's
/// sort policy and narrowing knob must not leak into the model-time event
/// stream: for every grid point the stream is byte-identical across
/// thread counts, and every (fused, cache, policy, narrow) point renders
/// the same bytes (the sort — its `sort.narrow` repack included — emits
/// only `wall.*` spans, never model events). Since `threads == 1`
/// always runs the unfused path, the sweep also proves fused and unfused
/// runs emit the same model events in the same order. The stream repeats
/// its reads three times so the cache genuinely engages; engagement is
/// visible as `cache.probe` instants and must appear exactly when the
/// cache is on.
#[test]
fn fused_and_cached_streams_keep_the_model_trace_byte_identical() {
    let _session = TracerSession::begin();
    let ds = dataset();
    let (pass, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 30, 31);
    let reads: Vec<_> = pass.iter().cycle().take(pass.len() * 3).cloned().collect();
    // The cache axis legitimately changes the stream (cache.probe
    // instants), so the cross-point reference is per-cache-setting; the
    // fused and sort-policy axes must leave those bytes untouched.
    let mut reference: [Option<String>; 2] = [None, None];
    let sort_grid = [
        (SortPolicy::Adaptive, false),
        (SortPolicy::Adaptive, true),
        (SortPolicy::Lsd, false),
        (SortPolicy::Lsd, true),
        (SortPolicy::Comparison, true),
    ];
    for (policy, narrow) in sort_grid {
        for fused in [false, true] {
            for (cache_axis, hot_kmers) in [(0usize, 0usize), (1, 1 << 18)] {
                let runs = model_sweep(|threads| {
                    let config = SieveConfig::type3(8)
                        .with_fused(fused)
                        .with_hot_kmers(hot_kmers)
                        .with_sort_policy(policy)
                        .with_sort_narrow(narrow);
                    HostPipeline::new(device(config, threads, &ds))
                        .classify_stream(&reads, 10)
                        .unwrap();
                });
                let (base_lines, base_snap) = &runs[0];
                assert!(!base_lines.is_empty());
                for (i, (lines, _)) in runs.iter().enumerate().skip(1) {
                    assert_eq!(
                        lines,
                        base_lines,
                        "sort={} narrow={narrow} fused={fused} hot_kmers={hot_kmers} \
                         threads={}: model stream diverged",
                        policy.label(),
                        THREAD_SWEEP[i]
                    );
                }
                match &reference[cache_axis] {
                    None => reference[cache_axis] = Some(base_lines.clone()),
                    Some(base) => assert_eq!(
                        base_lines,
                        base,
                        "sort={} narrow={narrow} fused={fused} hot_kmers={hot_kmers}: \
                         model stream diverged from the grid reference",
                        policy.label()
                    ),
                }
                let probes = base_snap
                    .model
                    .iter()
                    .filter(|e| e.name == "cache.probe")
                    .count();
                if hot_kmers > 0 {
                    assert!(
                        probes > 0,
                        "fused={fused}: repeated chunks never probed the cache"
                    );
                } else {
                    assert_eq!(probes, 0, "fused={fused}: disabled cache must not probe");
                }
            }
        }
    }
}

/// Work stealing reassigns fused tasks between wall-clock workers but
/// never touches model time, so the canonical model-stream rendering
/// must stay byte-identical across steal on/off × worker counts
/// {1,2,4,8} — including on a forced-imbalance batch (nearly every pair
/// in one radix bucket) where the stealer genuinely migrates work.
#[test]
fn steal_grid_keeps_the_model_trace_byte_identical() {
    let _session = TracerSession::begin();
    let ds = dataset();
    let mut queries: Vec<Kmer> = (0..6_000u64)
        .map(|i| Kmer::from_u64(0x2AAA_0000_0000 | i, 31).unwrap())
        .collect();
    queries.extend(ds.entries.iter().map(|&(k, _)| k).take(64));
    let mut reference: Option<String> = None;
    for steal in [false, true] {
        for threads in [1usize, 2, 4, 8] {
            trace::global().reset();
            device(SieveConfig::type3(8).with_steal(steal), threads, &ds)
                .run(&queries)
                .unwrap();
            let lines = trace::global().snapshot().model_lines();
            assert!(!lines.is_empty());
            match &reference {
                None => reference = Some(lines),
                Some(base) => assert_eq!(
                    &lines, base,
                    "steal={steal} threads={threads}: model stream diverged"
                ),
            }
        }
    }
}

/// The SWAR host kernels (packed extraction, branchless vote) change how
/// k-mers are computed, not which k-mers exist, so the model-time event
/// stream must be byte-identical across the kernels axis — crossed with
/// thread counts, where `threads == 1` also covers the unfused path.
#[test]
fn kernel_grid_keeps_the_model_trace_byte_identical() {
    let _session = TracerSession::begin();
    let ds = dataset();
    let reads = stream_workload(&ds);
    let mut reference: Option<String> = None;
    for kernels in [HostKernels::Scalar, HostKernels::Swar] {
        for threads in THREAD_SWEEP {
            trace::global().reset();
            HostPipeline::new(device(
                SieveConfig::type3(8).with_host_kernels(kernels),
                threads,
                &ds,
            ))
            .classify_stream(&reads, 25)
            .unwrap();
            let lines = trace::global().snapshot().model_lines();
            assert!(!lines.is_empty());
            match &reference {
                None => reference = Some(lines),
                Some(base) => assert_eq!(
                    &lines,
                    base,
                    "kernels={} threads={threads}: model stream diverged",
                    kernels.label()
                ),
            }
        }
    }
}

#[test]
fn cluster_model_trace_is_byte_identical_and_devices_share_a_start() {
    let _session = TracerSession::begin();
    let ds = synth::make_dataset_with(16, 4096, 31, 606);
    let queries: Vec<Kmer> = ds.entries.iter().step_by(29).map(|(k, _)| *k).collect();
    let runs = model_sweep(|threads| {
        let cluster = SieveCluster::new(
            SieveConfig::type3(8)
                .with_geometry(Geometry::scaled_medium())
                .with_threads(threads),
            3,
            ds.entries.clone(),
        )
        .unwrap();
        cluster.run(&queries).unwrap();
    });
    for (i, (lines, _)) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            lines, &runs[0].0,
            "threads={}: cluster model stream diverged",
            THREAD_SWEEP[i]
        );
    }
    let snap = &runs[0].1;
    // Devices run concurrently in the model: all three cluster.device
    // intervals start at the same (rewound) timestamp.
    let devs: Vec<&trace::TraceEvent> = snap
        .model
        .iter()
        .filter(|e| e.name == "cluster.device")
        .collect();
    assert_eq!(devs.len(), 3);
    assert!(
        devs.iter().all(|e| e.ts == devs[0].ts),
        "devices must share t0"
    );
    // And the final model clock is t0 + the slowest device.
    let makespan = devs.iter().map(|e| e.dur).max().unwrap();
    assert_eq!(trace::global().model_ps(), devs[0].ts + makespan);
}

#[test]
fn type1_model_trace_is_byte_identical_across_thread_counts() {
    let _session = TracerSession::begin();
    let ds = dataset();
    let queries: Vec<Kmer> = ds.entries.iter().step_by(17).map(|(k, _)| *k).collect();
    let runs = model_sweep(|threads| {
        device(SieveConfig::type1(), threads, &ds)
            .run(&queries)
            .unwrap();
    });
    for (i, (lines, _)) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            lines, &runs[0].0,
            "threads={}: Type-1 model stream diverged",
            THREAD_SWEEP[i]
        );
    }
    assert!(
        runs[0].1.model.iter().any(|e| e.name == "t1.stream"),
        "Type-1 runs emit per-task streaming intervals"
    );
}

#[test]
fn chrome_export_is_valid_json_with_both_clock_lanes() {
    let _session = TracerSession::begin();
    let ds = dataset();
    let reads = stream_workload(&ds);
    let host = HostPipeline::new(device(SieveConfig::type3(8), 4, &ds));
    host.classify_stream(&reads, 25).unwrap();
    let snap = trace::global().snapshot();
    let json = snap.to_chrome_json();

    let value = json::parse(&json).expect("Chrome export must be valid JSON");
    let json::Value::Object(top) = &value else {
        panic!("top level must be an object");
    };
    assert!(top.iter().any(|(k, _)| k == "displayTimeUnit"));
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents array");
    let json::Value::Array(events) = events else {
        panic!("traceEvents must be an array");
    };
    // Both clock domains appear as distinct process lanes, every event
    // carries a phase, and instants carry the required scope field.
    let mut pids = std::collections::BTreeSet::new();
    for ev in events {
        let json::Value::Object(fields) = ev else {
            panic!("every trace event must be an object");
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let Some(json::Value::String(ph)) = get("ph") else {
            panic!("event without ph: {fields:?}");
        };
        if let Some(json::Value::Number(pid)) = get("pid") {
            pids.insert(*pid as i64);
        }
        match ph.as_str() {
            "X" => assert!(get("dur").is_some(), "complete event needs dur"),
            "i" => assert!(
                matches!(get("s"), Some(json::Value::String(s)) if s == "t"),
                "instant needs a scope"
            ),
            "C" => assert!(
                matches!(get("args"), Some(json::Value::Object(a))
                    if a.iter().any(|(k, _)| k == "value")),
                "counter sample needs args.value"
            ),
            "M" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(
        pids.into_iter().collect::<Vec<_>>(),
        vec![1, 2],
        "model and wall domains must be separate process lanes"
    );
    // Wall events exist too (pipeline spans) — the second lane is real.
    assert!(!snap.wall.is_empty());
}

#[test]
fn folded_export_round_trips_the_snapshot() {
    let _session = TracerSession::begin();
    let ds = dataset();
    let reads = stream_workload(&ds);
    let host = HostPipeline::new(device(SieveConfig::type3(8), 2, &ds));
    host.classify_stream(&reads, 25).unwrap();
    let snap = trace::global().snapshot();
    let folded = snap.to_folded();

    // Every line parses as `path weight`, paths are rooted in one of the
    // two domains, and no frame repeats (lines are pre-aggregated).
    let mut seen = std::collections::BTreeSet::new();
    let mut model_total = 0u64;
    let mut wall_total = 0u64;
    for line in folded.lines() {
        let (path, weight) = line.rsplit_once(' ').expect("`path weight` shape");
        let weight: u64 = weight.parse().expect("numeric weight");
        assert!(weight > 0, "zero-weight frames are dropped: {line}");
        assert!(seen.insert(path.to_string()), "duplicate frame {path}");
        match path.split(';').next().unwrap() {
            "model" => model_total += weight,
            "wall" => wall_total += weight,
            other => panic!("unknown root {other}"),
        }
    }
    // Round-trip: the folded model weight is exactly the snapshot's model
    // mass (instants weigh 1), and the folded wall weight is exactly the
    // root spans' duration (self times of a subtree sum to the root).
    let model_mass: u64 = snap.model.iter().map(|e| e.dur.max(1)).sum();
    assert_eq!(model_total, model_mass);
    assert!(model_mass > 0);
    let mut root_mass = 0u64;
    for track in snap
        .wall
        .iter()
        .map(|e| e.track)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let mut open_until = 0u64;
        for e in snap.wall.iter().filter(|e| e.track == track) {
            if e.ts >= open_until {
                root_mass += e.dur.max(1);
                open_until = e.ts + e.dur;
            }
        }
    }
    assert_eq!(wall_total, root_mass);
}

#[test]
fn disabled_tracer_stays_out_of_the_pipeline() {
    let _session = TracerSession::begin();
    trace::global().set_enabled(false);
    let ds = dataset();
    let reads = stream_workload(&ds);
    let host = HostPipeline::new(device(SieveConfig::type3(8), 2, &ds));
    host.classify_stream(&reads, 25).unwrap();
    let snap = trace::global().snapshot();
    assert!(snap.model.is_empty());
    assert!(snap.wall.is_empty());
    assert_eq!(trace::global().model_ps(), 0, "clock frozen while disabled");
    trace::global().set_enabled(true); // session drop expects to disable
}

/// Minimal recursive-descent JSON parser — just enough to validate the
/// Chrome export without serde (the workspace builds offline).
mod json {
    #[derive(Debug)]
    pub enum Value {
        Object(Vec<(String, Value)>),
        Array(Vec<Value>),
        String(String),
        Number(f64),
        // The payload is never inspected (the tests only check booleans
        // parse); kept so `parse` accepts every JSON form.
        Bool(#[allow(dead_code)] bool),
        Null,
    }

    pub fn parse(s: &str) -> Result<Value, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && b[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {} at byte {}", c as char, *pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::String(string(b, pos)?)),
            Some(b't') => lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => lit(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            fields.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected , or }} at byte {}", *pos)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected , or ] at byte {}", *pos)),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                }
                _ => out.push(c as char),
            }
        }
        Err("unterminated string".into())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while b
            .get(*pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}
