//! Quickstart: build a reference k-mer database, load it into a Type-3
//! Sieve device, and look up a batch of query k-mers.
//!
//! Run with: `cargo run --example quickstart --release`

use sieve::core::{SieveConfig, SieveDevice};
use sieve::dram::Geometry;
use sieve::genomics::synth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a small reference: 8 bacterial genomes, k = 31.
    let dataset = synth::make_dataset_with(8, 4096, 31, 42);
    println!(
        "reference: {} genomes, {} distinct 31-mers",
        dataset.genomes.len(),
        dataset.entries.len()
    );

    // 2. Load it into a throughput-optimized Type-3 device (8 concurrent
    //    subarrays per bank), on a scaled-down geometry.
    let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
    let device = SieveDevice::new(config, dataset.entries.clone())?;
    println!(
        "device: {} | {} occupied subarrays | index table {} bytes",
        device.config().device.label(),
        device.layout().occupied_subarrays(),
        device.index().map_or(0, |i| i.table_bytes()),
    );

    // 3. Query it: sequencing reads become streams of k-mers.
    let (reads, _) = synth::simulate_reads(&dataset, synth::ReadSimConfig::default(), 100, 7);
    let queries: Vec<_> = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, kmer)| kmer))
        .collect();
    let out = device.run(&queries)?;

    // 4. Inspect the results and the simulation report.
    println!(
        "\n{} queries  →  {} hits ({:.2}% hit rate)",
        out.report.queries,
        out.report.hits,
        100.0 * out.report.hits as f64 / out.report.queries as f64
    );
    println!(
        "makespan {:.1} µs | {:.1} M queries/s | {:.2} nJ/query",
        out.report.makespan_ps as f64 / 1e6,
        out.report.throughput_qps() / 1e6,
        out.report.energy_per_query_nj()
    );
    println!(
        "row activations: {} ({} without ETM → {:.1}% pruned)",
        out.report.row_activations,
        out.report.rows_without_etm,
        100.0 * out.report.etm_savings()
    );
    Ok(())
}
