//! Deploy a Sieve device through the §IV-C API — transport validation,
//! one-time database transposition + load, then repeated query campaigns
//! that amortize the load cost.
//!
//! Run with: `cargo run --example deploy_and_amortize --release`

use sieve::core::{SieveApi, SieveConfig, Transport};
use sieve::dram::Geometry;
use sieve::genomics::synth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = synth::make_dataset_with(16, 8192, 31, 321);
    let geometry = Geometry::new(1, 2, 128, 512, 8192)?;

    // Type-3 on a DIMM is rejected (power delivery, §IV-C)…
    let dimm_attempt = SieveApi::deploy(
        SieveConfig::type3(8).with_geometry(geometry),
        Transport::dimm(),
        dataset.entries.clone(),
    );
    println!(
        "Type-3 on DIMM: {}",
        dimm_attempt
            .err()
            .map(|e| e.to_string())
            .unwrap_or_default()
    );

    // …so deploy it on PCIe 4.0 x16.
    let mut api = SieveApi::deploy(
        SieveConfig::type3(8).with_geometry(geometry),
        Transport::pcie_gen4_x16(),
        dataset.entries.clone(),
    )?;
    let load = *api.load_report();
    println!(
        "\ndeployed on {}: image {:.1} MB, transpose {:.2} ms, load {:.2} ms",
        api.transport().label(),
        load.image_bytes as f64 / 1e6,
        load.transpose_ps as f64 / 1e9,
        load.total_ps() as f64 / 1e9,
    );
    println!(
        "peak power {:.1} W → thermal: {:?}",
        SieveApi::peak_power_w(api.device().config()),
        api.thermal_verdict()
    );

    // Query campaigns: the one-time load cost fades.
    let (reads, _) = synth::simulate_reads(&dataset, synth::ReadSimConfig::default(), 400, 5);
    let queries: Vec<_> = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect();
    println!("\ncampaign  queries served  load share of total time");
    for campaign in 1..=5 {
        api.query(&queries)?;
        println!(
            "{campaign:>8}  {:>14}  {:>23.2}%",
            api.queries_served(),
            100.0 * api.amortized_load_overhead()
        );
    }
    println!(
        "\nqueries to reach 1% load overhead at current throughput: {:.2e}",
        load.amortization_queries(
            api.device().config().geometry.total_banks() as f64 * 1e6,
            0.01
        ) as f64
    );
    Ok(())
}
