//! Explore the Sieve design space (the paper's §IV/VI trade-off): Type-1
//! (area-optimized) vs Type-2 sweeps (balanced) vs Type-3 (throughput-
//! optimized), on one workload.
//!
//! Run with: `cargo run --example design_space --release`

use sieve::core::area::AreaModel;
use sieve::core::{SieveConfig, SieveDevice};
use sieve::dram::Geometry;
use sieve::genomics::synth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = synth::make_dataset_with(16, 8192, 31, 5);
    let (reads, _) = synth::simulate_reads(&dataset, synth::ReadSimConfig::default(), 300, 6);
    let queries: Vec<_> = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, kmer)| kmer))
        .collect();
    let geometry = Geometry::new(1, 2, 128, 512, 8192)?;
    let area = AreaModel::paper();

    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "design", "throughput", "energy/query", "area"
    );
    let mut configs = vec![SieveConfig::type1()];
    for cb in [1u32, 16, 128] {
        configs.push(SieveConfig::type2(cb));
    }
    for salp in [1u32, 8, 64] {
        configs.push(SieveConfig::type3(salp));
    }
    for config in configs {
        let device = SieveDevice::new(config.with_geometry(geometry), dataset.entries.clone())?;
        let out = device.run(&queries)?;
        println!(
            "{:<10} {:>11.2} Mq/s {:>11.2} nJ {:>9.2}%",
            out.report.device,
            out.report.throughput_qps() / 1e6,
            out.report.energy_per_query_nj(),
            100.0 * area.overhead(device.config().device),
        );
    }
    println!("\nThe paper's conclusion: Type-1 is cheap but slow; Type-2 trades hop");
    println!("latency against buffer area; Type-3 pays ~11% area for subarray-level");
    println!("parallelism and wins on throughput.");
    Ok(())
}
