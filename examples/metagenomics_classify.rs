//! Metagenomic read classification end-to-end through the Sieve host
//! pipeline (the Figure 2/3 workflow): reads → k-mers → in-DRAM matching →
//! per-read taxon histograms → majority classification.
//!
//! Run with: `cargo run --example metagenomics_classify --release`

use sieve::core::{HostPipeline, SieveConfig, SieveDevice};
use sieve::dram::Geometry;
use sieve::genomics::synth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reference of 16 species grouped in genera (shared k-mers are
    // labelled with the genus LCA, as Kraken does).
    let dataset = synth::make_dataset_with(16, 8192, 31, 2024);
    let device = SieveDevice::new(
        SieveConfig::type3(8).with_geometry(Geometry::scaled_medium()),
        dataset.entries.clone(),
    )?;
    let host = HostPipeline::new(device);

    // A metagenomic sample: 60 % known organisms (with sequencing errors),
    // 40 % novel organisms absent from the reference.
    let (reads, truth) = synth::simulate_reads(
        &dataset,
        synth::ReadSimConfig {
            read_len: 100,
            from_reference: 0.6,
            error_rate: 0.01,
            n_rate: 0.001,
        },
        500,
        99,
    );

    let out = host.classify_reads(&reads)?;

    let mut correct = 0usize;
    let mut genus_level = 0usize;
    let mut classified = 0usize;
    let mut novel_rejected = 0usize;
    let mut novel = 0usize;
    for (result, t) in out.reads.iter().zip(&truth) {
        match (result.taxon, t) {
            (Some(assigned), Some(origin)) => {
                classified += 1;
                if assigned == *origin {
                    correct += 1;
                } else if dataset.taxonomy.lca(assigned, *origin)? == assigned {
                    genus_level += 1; // conservative LCA assignment
                }
            }
            (Some(_), None) => classified += 1,
            (None, None) => {
                novel_rejected += 1;
            }
            (None, Some(_)) => {}
        }
        if t.is_none() {
            novel += 1;
        }
    }

    println!("classified {classified}/{} reads", reads.len());
    println!("  exact species recovered: {correct}");
    println!("  conservative (ancestor) assignments: {genus_level}");
    println!("  novel reads correctly left unclassified: {novel_rejected}/{novel}");
    println!(
        "\ndevice: {} | {:.1} µs makespan | ETM pruned {:.1}% of row activations",
        out.report.device,
        out.report.makespan_ps as f64 / 1e6,
        100.0 * out.report.etm_savings()
    );
    Ok(())
}
