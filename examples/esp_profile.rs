//! Profile the Expected Shared Prefix of a query stream against a loaded
//! device — the statistic behind Sieve's Early Termination Mechanism
//! (paper §III, Figure 6).
//!
//! Run with: `cargo run --example esp_profile --release`

use sieve::core::{engine, DeviceLayout, SieveConfig, SubarrayIndex};
use sieve::dram::Geometry;
use sieve::genomics::synth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = synth::make_dataset_with(16, 8192, 31, 77);
    let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
    let layout = DeviceLayout::build(dataset.entries.clone(), &config)?;
    let index = SubarrayIndex::build(&layout);

    let (reads, _) = synth::simulate_reads(&dataset, synth::ReadSimConfig::default(), 300, 78);
    let mut rows_hist = vec![0u64; 63];
    let mut total_rows = 0u64;
    let mut queries = 0u64;
    for read in &reads {
        for (_, q) in read.kmers(31) {
            let sa = layout.subarray(index.locate(q));
            let outcome = engine::lookup(&sa, q, true, 1);
            rows_hist[outcome.rows as usize] += 1;
            total_rows += u64::from(outcome.rows);
            queries += 1;
        }
    }

    println!("rows-activated distribution over {queries} lookups (62 = full scan):\n");
    let max = *rows_hist.iter().max().unwrap_or(&1);
    for (rows, &count) in rows_hist.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let bar = "#".repeat((count * 48 / max.max(1)) as usize);
        println!("{rows:>3} rows | {bar} {count}");
    }
    let avg = total_rows as f64 / queries as f64;
    println!(
        "\naverage: {avg:.1} of 62 rows  →  ETM prunes {:.1}%",
        100.0 * (1.0 - avg / 62.0)
    );
    println!("(the mode sits near log2(|DB|)+2 bits — the shared prefix with the");
    println!(" query's nearest sorted neighbours; hits and near-misses reach 62)");
    Ok(())
}
